"""One experiment per paper figure.

Each function builds fresh stores at the requested scale, drives the same
workloads the paper uses, and returns a dict with ``title``, ``headers``,
``rows`` (for text rendering) plus the raw series the pytest benches assert
against.  Absolute numbers differ from the paper (simulator, scaled data);
the *shapes* — who wins, by what factor, where crossovers sit — are the
reproduction target recorded in EXPERIMENTS.md.

Every figure is a grid of independent cells (store × thread-count,
store × skew, …).  Each cell is a top-level function that builds its own
stores and RNG streams from explicit seeds, so the grid fans out across
worker processes via :mod:`repro.parallel`: pass ``workers=N`` (or
``python -m repro.bench --workers N``).  Cells are submitted in the same
nested-loop order the serial code used and collected in submission order,
so tables and raw series are byte-identical at every worker count —
``workers=1`` runs the cells in-process with no pool at all.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

import numpy as np

from repro.bench.context import BenchScale, build_store, hyperdb_config
from repro.bench.reporting import kops, mb
from repro.core import HyperDB
from repro.health.state import HealthState, HealthWindow
from repro.simssd.faults import FaultInjector, FaultPlan
from repro.hotness.interval import (
    interval_conditional_probabilities,
    probability_summary,
)
from repro.parallel import Job, run_jobs
from repro.parallel.pool import JobResult, unwrap_all
from repro.ycsb import WorkloadRunner, WorkloadSpec, YCSB_WORKLOADS


def _loaded_runner(store_name: str, scale: BenchScale, **runner_kw) -> WorkloadRunner:
    store = build_store(store_name, scale)
    runner = WorkloadRunner(
        store,
        record_count=scale.record_count,
        value_size=scale.value_size,
        clients=runner_kw.pop("clients", scale.clients),
        background_threads=runner_kw.pop("background_threads", scale.background_threads),
        seed=scale.seed,
        **runner_kw,
    )
    runner.load()
    return runner


WRITE_ONLY = WorkloadSpec("write-only", update=1.0, distribution="uniform")

#: Per-job timing of the most recent experiment call, keyed by experiment
#: name — the CLI drains this into the ``--timing-out`` artifact.
LAST_JOB_TIMINGS: dict[str, list[JobResult]] = {}


def _run_cells(name: str, jobs: list[Job], workers: int) -> list:
    """Run one figure's cell jobs, remember their timings, return values."""
    results = run_jobs(jobs, workers=workers)
    LAST_JOB_TIMINGS[name] = results
    return unwrap_all(results)


# ------------------------------------------------------------------- cells
#
# One top-level (hence picklable) function per cell shape.  A cell builds
# everything it needs from its arguments and returns plain data — never a
# live store or runner — so results cross process boundaries cheaply.


def _fig2_cell(store_name: str, bg_threads: int, scale: BenchScale) -> dict:
    runner = _loaded_runner(store_name, scale, background_threads=bg_threads)
    result = runner.run(WRITE_ONLY, scale.operations)
    devices = runner.store.devices()
    return {
        "nvme_read_Bps": result.read_bytes("nvme") / result.elapsed_s,
        "nvme_write_Bps": result.write_bytes("nvme") / result.elapsed_s,
        "nvme_capacity_util": result.space_used["nvme"] / devices["nvme"].capacity_bytes,
        "sata_capacity_util": result.space_used["sata"] / devices["sata"].capacity_bytes,
    }


def _fig3_cell(
    store_name: str, bg_threads: int, scale: BenchScale, want_levels: bool
) -> dict:
    runner = _loaded_runner(store_name, scale, background_threads=bg_threads)
    result = runner.run(WRITE_ONLY, scale.operations)
    comp_bytes = result.read_bytes("sata", "compaction") + result.write_bytes(
        "sata", "compaction"
    )
    bw = comp_bytes / result.elapsed_s
    sata_dev = runner.store.devices()["sata"]
    frac = bw / (sata_dev.profile.write_bandwidth + sata_dev.profile.read_bandwidth)
    levels = None
    if want_levels:
        tree = getattr(runner.store, "tree", None)
        if tree is not None:
            per_level = dict(tree.compactor.stats.write_bytes_by_level)
            per_level_rd = dict(tree.compactor.stats.read_bytes_by_level)
            levels = {
                lvl: per_level.get(lvl, 0) + per_level_rd.get(lvl, 0)
                for lvl in set(per_level) | set(per_level_rd)
            }
    return {"bw": bw, "frac": frac, "levels": levels}


def _fig6a_cell(trace: list, threshold: int, history: int) -> dict:
    return probability_summary(
        interval_conditional_probabilities(trace, threshold=threshold, history=history)
    )


def _workload_cell(
    store_name: str, scale: BenchScale, spec: WorkloadSpec, operations: int
):
    """The generic figure cell: load a store, run one workload, return the
    :class:`RunResult` (figs 8, 9a-c, 10, 11)."""
    runner = _loaded_runner(store_name, scale)
    return runner.run(spec, operations)


def _ablation_cell(overrides: dict, scale: BenchScale) -> dict:
    store = build_store("hyperdb", scale, **overrides)
    runner = WorkloadRunner(
        store,
        record_count=scale.record_count,
        value_size=scale.value_size,
        clients=scale.clients,
        background_threads=scale.background_threads,
        seed=scale.seed,
    )
    runner.load()
    result = runner.run(YCSB_WORKLOADS["A"], scale.operations)
    return {
        "result": result,
        "space_amp": store.capacity_tier.space_amplification(),
    }


# --------------------------------------------------------------------- Fig 2

def fig2_utilization(
    scale: Optional[BenchScale] = None, threads=(1, 2, 4, 8), workers: int = 1
):
    """Fig. 2: NVMe bandwidth (read vs write) and per-tier capacity
    utilization for RocksDB and PrismDB under a write-only uniform load.

    Uses a constrained NVMe ratio: the paper's §2.3 motivation study runs
    with the caching architecture pinned at its high watermark, where every
    write forces migration."""
    scale = scale or BenchScale.default(nvme_ratio=0.3)
    grid = [(s, t) for s in ("rocksdb", "prismdb") for t in threads]
    jobs = [
        Job(_fig2_cell, args=(s, t, scale), label=f"fig2:{s}:bg{t}")
        for s, t in grid
    ]
    cells = _run_cells("fig2", jobs, workers)
    rows = []
    raw = {}
    for (store_name, t), cell in zip(grid, cells):
        rows.append(
            (store_name, t, mb(cell["nvme_read_Bps"]), mb(cell["nvme_write_Bps"]),
             cell["nvme_capacity_util"] * 100, cell["sata_capacity_util"] * 100)
        )
        raw[(store_name, t)] = cell
    return {
        "title": "Fig 2: bandwidth (MiB/s) and capacity utilization (%), write-only",
        "headers": ["store", "bg threads", "nvme rd MiB/s", "nvme wr MiB/s",
                    "nvme cap %", "sata cap %"],
        "rows": rows,
        "raw": raw,
    }


# --------------------------------------------------------------------- Fig 3

def fig3_compaction_overhead(
    scale: Optional[BenchScale] = None, threads=(1, 2, 4, 8), workers: int = 1
):
    """Fig. 3: capacity-tier bandwidth consumed by compaction vs thread
    count (a) and the per-level compaction I/O breakdown (b).

    Constrained NVMe ratio, like Fig. 2 (the same §2.3 motivation setup)."""
    scale = scale or BenchScale.default(nvme_ratio=0.3)
    grid = [(s, t) for s in ("rocksdb", "prismdb") for t in threads]
    jobs = [
        Job(
            _fig3_cell,
            args=(s, t, scale, t == threads[-1]),
            label=f"fig3:{s}:bg{t}",
        )
        for s, t in grid
    ]
    cells = _run_cells("fig3", jobs, workers)
    rows_a = []
    raw = {"bandwidth": {}, "levels": {}}
    for (store_name, t), cell in zip(grid, cells):
        rows_a.append((store_name, t, mb(cell["bw"]), cell["frac"] * 100))
        raw["bandwidth"][(store_name, t)] = cell["bw"]
        if t == threads[-1] and cell["levels"] is not None:
            raw["levels"][store_name] = cell["levels"]
    rows_b = []
    for store_name, levels in raw["levels"].items():
        total = sum(levels.values()) or 1
        for lvl in sorted(levels):
            rows_b.append((store_name, f"L{lvl}", mb(levels[lvl]), levels[lvl] / total * 100))
    return {
        "title": "Fig 3a: compaction bandwidth on the capacity tier",
        "headers": ["store", "bg threads", "compaction MiB/s", "% of device bw"],
        "rows": rows_a,
        "title_b": "Fig 3b: compaction I/O volume by output level",
        "headers_b": ["store", "level", "I/O MiB", "% of total"],
        "rows_b": rows_b,
        "raw": raw,
    }


# -------------------------------------------------------------------- Fig 6a

def fig6a_interval_correlation(
    n_keys: int = 2000, accesses: int = 100_000, seed: int = 3, workers: int = 1
):
    """Fig. 6a: P(next interval < t | s past intervals < t) on an 80/20
    trace, for t in {5%, 10%, 20%} of the workload and s in {1, 3, 5}."""
    rng = np.random.default_rng(seed)
    hot = n_keys // 5
    choose_hot = rng.random(accesses) < 0.8
    hot_keys = rng.integers(0, hot, size=accesses)
    cold_keys = rng.integers(hot, n_keys, size=accesses)
    trace = np.where(choose_hot, hot_keys, cold_keys).tolist()
    grid = [(t_frac, s) for t_frac in (0.05, 0.10, 0.20) for s in (1, 3, 5)]
    jobs = [
        Job(
            _fig6a_cell,
            args=(trace, int(t_frac * accesses), s),
            label=f"fig6a:t{t_frac:.0%}:s{s}",
        )
        for t_frac, s in grid
    ]
    cells = _run_cells("fig6a", jobs, workers)
    rows = []
    raw = {}
    for (t_frac, s), summary in zip(grid, cells):
        if summary["objects"] == 0:
            # probability_summary signals emptiness with NaN quantiles; NaN
            # never compares equal, which would break row/digest equality
            # checks, so represent empty cells as None here.
            summary = {"median": None, "p25": None, "p75": None, "objects": 0}
        rows.append(
            (f"{t_frac:.0%}", s, summary["median"], summary["p25"],
             summary["p75"], int(summary["objects"]))
        )
        raw[(t_frac, s)] = summary
    return {
        "title": "Fig 6a: interval conditional probability, 80/20 trace",
        "headers": ["t (of workload)", "s", "median", "p25", "p75", "objects"],
        "rows": rows,
        "raw": raw,
    }


# --------------------------------------------------------------------- Fig 8

def fig8_ycsb(
    scale: Optional[BenchScale] = None,
    stores=("rocksdb", "rocksdb-sc", "prismdb", "hyperdb"),
    workloads=("A", "B", "C", "D", "E", "F"),
    workers: int = 1,
):
    """Fig. 8: YCSB A–F throughput, median latency, and P99 latency for all
    four engines (zipfian 0.99, 8B keys / 128B values)."""
    scale = scale or BenchScale.default()
    grid = []
    jobs = []
    for wl_name in workloads:
        spec = YCSB_WORKLOADS[wl_name]
        ops = scale.operations if spec.scan == 0 else max(500, scale.operations // 20)
        for store_name in stores:
            grid.append((wl_name, store_name))
            jobs.append(
                Job(
                    _workload_cell,
                    args=(store_name, scale, spec, ops),
                    label=f"fig8:{wl_name}:{store_name}",
                )
            )
    cells = _run_cells("fig8", jobs, workers)
    rows = []
    raw = {}
    for (wl_name, store_name), result in zip(grid, cells):
        rows.append(
            (
                wl_name,
                store_name,
                kops(result.throughput_ops),
                result.median_latency() * 1e6,
                result.p99_latency() * 1e6,
            )
        )
        raw[(wl_name, store_name)] = result
    return {
        "title": "Fig 8: YCSB throughput (kops/s), median and P99 latency (us)",
        "headers": ["workload", "store", "kops/s", "median us", "p99 us"],
        "rows": rows,
        "raw": raw,
    }


# --------------------------------------------------------------------- Fig 9

def fig9a_skew_sweep(
    scale: Optional[BenchScale] = None,
    stores=("rocksdb", "prismdb", "hyperdb"),
    thetas=("uniform", 0.6, 0.8, 0.99, 1.2),
    workers: int = 1,
):
    """Fig. 9a: YCSB-A throughput across request-skew settings."""
    scale = scale or BenchScale.default()
    grid = []
    jobs = []
    for theta in thetas:
        if theta == "uniform":
            spec = YCSB_WORKLOADS["A"].with_distribution("uniform")
        else:
            spec = YCSB_WORKLOADS["A"].with_distribution("zipfian", theta=theta)
        for store_name in stores:
            grid.append((theta, store_name))
            jobs.append(
                Job(
                    _workload_cell,
                    args=(store_name, scale, spec, scale.operations),
                    label=f"fig9a:{theta}:{store_name}",
                )
            )
    cells = _run_cells("fig9a", jobs, workers)
    rows = []
    raw = {}
    for (theta, store_name), result in zip(grid, cells):
        rows.append((str(theta), store_name, kops(result.throughput_ops)))
        raw[(theta, store_name)] = result
    return {
        "title": "Fig 9a: YCSB-A throughput (kops/s) vs skew",
        "headers": ["skew", "store", "kops/s"],
        "rows": rows,
        "raw": raw,
    }


def fig9b_value_size_sweep(
    scale: Optional[BenchScale] = None,
    stores=("rocksdb", "prismdb", "hyperdb"),
    value_sizes=(16, 64, 128, 512, 1024, 4096),
    workers: int = 1,
):
    """Fig. 9b: YCSB-A throughput across value sizes.  The dataset byte
    volume is held fixed (the paper holds the loaded volume constant), so
    record counts shrink as values grow."""
    base = scale or BenchScale.default()
    grid = []
    jobs = []
    for vs in value_sizes:
        point = BenchScale.default(
            value_size=vs,
            record_count=max(2000, base.dataset_bytes // (14 + 8 + vs)),
            operations=base.operations,
            nvme_ratio=base.nvme_ratio,
        )
        for store_name in stores:
            grid.append((vs, store_name))
            jobs.append(
                Job(
                    _workload_cell,
                    args=(store_name, point, YCSB_WORKLOADS["A"], point.operations),
                    label=f"fig9b:{vs}B:{store_name}",
                )
            )
    cells = _run_cells("fig9b", jobs, workers)
    rows = []
    raw = {}
    for (vs, store_name), result in zip(grid, cells):
        rows.append((vs, store_name, kops(result.throughput_ops)))
        raw[(vs, store_name)] = result
    return {
        "title": "Fig 9b: YCSB-A throughput (kops/s) vs value size",
        "headers": ["value B", "store", "kops/s"],
        "rows": rows,
        "raw": raw,
    }


def fig9c_nvme_ratio_sweep(
    scale: Optional[BenchScale] = None,
    stores=("rocksdb", "prismdb", "hyperdb"),
    ratios=(0.05, 0.1, 0.2, 0.4, 0.8),
    workers: int = 1,
):
    """Fig. 9c: YCSB-A throughput vs NVMe:dataset capacity ratio.

    The paper sweeps 1%–16% of a 100 GB load (1–16 GB of NVMe).  At our
    scaled dataset those percentages land below one device's minimum useful
    size (a few dozen pages), so the sweep covers 5%–80% instead; the
    shapes compared are the same — caching designs improve with the ratio,
    the embedding design barely moves.
    """
    # A larger dataset keeps even the smallest ratio above the device's
    # minimum useful size.
    base = scale or BenchScale.default(record_count=80_000)
    grid = []
    jobs = []
    for ratio in ratios:
        point = BenchScale.default(
            record_count=base.record_count,
            operations=base.operations,
            value_size=base.value_size,
            nvme_ratio=ratio,
        )
        for store_name in stores:
            grid.append((ratio, store_name))
            jobs.append(
                Job(
                    _workload_cell,
                    args=(store_name, point, YCSB_WORKLOADS["A"], point.operations),
                    label=f"fig9c:{ratio:.0%}:{store_name}",
                )
            )
    cells = _run_cells("fig9c", jobs, workers)
    rows = []
    raw = {}
    for (ratio, store_name), result in zip(grid, cells):
        rows.append((f"{ratio:.0%}", store_name, kops(result.throughput_ops)))
        raw[(ratio, store_name)] = result
    return {
        "title": "Fig 9c: YCSB-A throughput (kops/s) vs NVMe capacity ratio",
        "headers": ["nvme ratio", "store", "kops/s"],
        "rows": rows,
        "raw": raw,
    }


# -------------------------------------------------------------------- Fig 10

def fig10_latency_breakdown(
    scale: Optional[BenchScale] = None,
    stores=("rocksdb", "hyperdb"),
    thetas=("uniform", 0.8, 0.99),
    workers: int = 1,
):
    """Fig. 10: read/write median and P99 latency across skew settings."""
    scale = scale or BenchScale.default()
    grid = []
    jobs = []
    for theta in thetas:
        if theta == "uniform":
            spec = YCSB_WORKLOADS["A"].with_distribution("uniform")
        else:
            spec = YCSB_WORKLOADS["A"].with_distribution("zipfian", theta=theta)
        for store_name in stores:
            grid.append((theta, store_name))
            jobs.append(
                Job(
                    _workload_cell,
                    args=(store_name, scale, spec, scale.operations),
                    label=f"fig10:{theta}:{store_name}",
                )
            )
    cells = _run_cells("fig10", jobs, workers)
    rows = []
    raw = {}
    for (theta, store_name), result in zip(grid, cells):
        rows.append(
            (
                str(theta),
                store_name,
                result.median_latency("read") * 1e6,
                result.p99_latency("read") * 1e6,
                result.median_latency("update") * 1e6,
                result.p99_latency("update") * 1e6,
            )
        )
        raw[(theta, store_name)] = result
    return {
        "title": "Fig 10: read/write latency (us) vs skew",
        "headers": ["skew", "store", "rd med", "rd p99", "wr med", "wr p99"],
        "rows": rows,
        "raw": raw,
    }


# -------------------------------------------------------------------- Fig 11

def fig11_background_traffic(
    scale: Optional[BenchScale] = None,
    stores=("rocksdb", "rocksdb-sc", "prismdb", "hyperdb"),
    workers: int = 1,
):
    """Fig. 11: total write I/O per tier and space usage, uniform YCSB-A
    with 1 KB values (the paper's background-traffic headline: HyperDB
    writes ~60% less than RocksDB)."""
    # NVMe-rich like the paper's testbed (960 GB NVMe vs ~100 GB load):
    # RocksDB cannot exploit the headroom because levels are placed whole
    # (§2.3), while HyperDB absorbs updates in place.
    scale = scale or BenchScale.default(
        value_size=1024, record_count=6000, nvme_ratio=0.8
    )
    spec = YCSB_WORKLOADS["A"].with_distribution("uniform")
    jobs = [
        Job(
            _workload_cell,
            args=(store_name, scale, spec, scale.operations),
            label=f"fig11:{store_name}",
        )
        for store_name in stores
    ]
    cells = _run_cells("fig11", jobs, workers)
    rows = []
    raw = {}
    for store_name, result in zip(stores, cells):
        nvme_w = result.write_bytes("nvme")
        sata_w = result.write_bytes("sata")
        rows.append(
            (
                store_name,
                mb(nvme_w),
                mb(sata_w),
                mb(nvme_w + sata_w),
                mb(result.space_used["nvme"]),
                mb(result.space_used["sata"]),
            )
        )
        raw[store_name] = result
    return {
        "title": "Fig 11: write I/O (MiB) and space usage (MiB), uniform 1KB",
        "headers": ["store", "nvme wr", "sata wr", "total wr", "nvme space", "sata space"],
        "rows": rows,
        "raw": raw,
    }


# --------------------------------------------------------------- Queue depth

def _queue_cell(
    queue_count: int, queue_depth: int, degraded: bool, scale: BenchScale
):
    """One (queue_count, queue_depth) cell: HyperDB on multi-queue devices,
    YCSB-A, optionally inside a whole-run 8x capacity-tier brownout."""
    cell_scale = replace(
        scale, queue_count=queue_count, queue_depth=queue_depth
    )
    injector = None
    if degraded:
        injector = FaultInjector(
            FaultPlan(
                health_windows=(
                    HealthWindow("sata", HealthState.BROWNOUT, 1, 1 << 40, 8.0),
                )
            )
        )
    nvme, sata = cell_scale.devices(injector=injector)
    store = HyperDB(nvme, sata, hyperdb_config(cell_scale))
    runner = WorkloadRunner(
        store,
        record_count=cell_scale.record_count,
        value_size=cell_scale.value_size,
        clients=cell_scale.clients,
        background_threads=cell_scale.background_threads,
        seed=cell_scale.seed,
    )
    runner.load()
    return runner.run(YCSB_WORKLOADS["A"], cell_scale.operations)


def queue_depth_isolation(
    scale: Optional[BenchScale] = None, workers: int = 1
):
    """Throughput vs queue count/depth, healthy and degraded (the
    multi-queue service-model figure).

    The shape is migration-heavy (NVMe holds 35% of the dataset, so
    demotions run constantly); the degraded column runs the whole stream
    inside an 8x capacity-tier brownout.  Queue counts 1/2/4 at full depth
    show what isolating background traffic from the foreground queue buys
    back under degradation; shallow depths at 4 queues show the per-queue
    concurrency cap throttling the device.
    """
    # Sized past the 512 KiB NVMe capacity floor: smaller datasets leave
    # the fast tier oversized, migration never runs, and there is no
    # background traffic to isolate.
    scale = scale or BenchScale.default(
        record_count=6_000, operations=6_000, nvme_ratio=0.35
    )
    shapes = [(1, 32), (2, 32), (4, 32), (4, 4), (4, 1)]
    jobs = [
        Job(
            _queue_cell,
            args=(qc, qd, degraded, scale),
            label=f"queue_depth:qc{qc}qd{qd}:{mode}",
        )
        for qc, qd in shapes
        for mode, degraded in (("healthy", False), ("degraded", True))
    ]
    cells = _run_cells("queue_depth", jobs, workers)
    rows = []
    raw = {}
    it = iter(cells)
    for qc, qd in shapes:
        healthy = next(it)
        degraded = next(it)
        rows.append(
            (
                f"qc={qc} qd={qd}",
                kops(healthy.throughput_ops),
                kops(degraded.throughput_ops),
                round(degraded.throughput_ops / healthy.throughput_ops, 3),
            )
        )
        raw[f"qc{qc}_qd{qd}"] = {"healthy": healthy, "degraded": degraded}
    return {
        "title": "Queue depth: YCSB-A kops/s vs queue geometry, "
        "healthy and under an 8x SATA brownout",
        "headers": ["shape", "healthy kops/s", "degraded kops/s", "ratio"],
        "rows": rows,
        "raw": raw,
    }


# ----------------------------------------------------------------- Ablations

def ablations(scale: Optional[BenchScale] = None, workers: int = 1):
    """Design-choice ablations (§3): hot zone, preemptive compaction depth,
    T_clean, and power-of-k victim sampling, measured on skewed YCSB-A with
    a constrained NVMe tier (the knobs only engage under migration and
    compaction pressure)."""
    scale = scale or BenchScale.default(nvme_ratio=0.4)
    variants = {
        "hyperdb": {},
        "no-hot-zone": {"enable_hot_zone": False},
        "no-preemptive": {"enable_preemptive_compaction": False},
        "t_clean=0.2": {"t_clean": 0.2},
        "t_clean=0.9": {"t_clean": 0.9},
        "candidate_k=1": {"candidate_k": 1},
    }
    jobs = [
        Job(_ablation_cell, args=(overrides, scale), label=f"ablations:{label}")
        for label, overrides in variants.items()
    ]
    cells = _run_cells("ablations", jobs, workers)
    rows = []
    raw = {}
    for label, cell in zip(variants, cells):
        result = cell["result"]
        rows.append(
            (
                label,
                kops(result.throughput_ops),
                result.p99_latency() * 1e6,
                mb(result.write_bytes("nvme") + result.write_bytes("sata")),
                cell["space_amp"],
            )
        )
        raw[label] = result
    return {
        "title": "Ablations: YCSB-A, zipfian 0.99",
        "headers": ["variant", "kops/s", "p99 us", "write MiB", "sata space amp"],
        "rows": rows,
        "raw": raw,
    }


ALL_EXPERIMENTS = {
    "fig2": fig2_utilization,
    "fig3": fig3_compaction_overhead,
    "fig6a": fig6a_interval_correlation,
    "fig8": fig8_ycsb,
    "fig9a": fig9a_skew_sweep,
    "fig9b": fig9b_value_size_sweep,
    "fig9c": fig9c_nvme_ratio_sweep,
    "fig10": fig10_latency_breakdown,
    "fig11": fig11_background_traffic,
    "queue_depth": queue_depth_isolation,
    "ablations": ablations,
}

"""Benchmark harness: regenerates every table and figure in the paper's
evaluation (§4) at a configurable scale.

* :mod:`repro.bench.context` — scaled device/store construction.
* :mod:`repro.bench.experiments` — one function per paper figure.
* :mod:`repro.bench.reporting` — text tables matching the paper's rows.

Run everything from the command line::

    python -m repro.bench            # all figures, default scale
    python -m repro.bench fig8 fig11 # a subset
    REPRO_SCALE=4 python -m repro.bench  # 4x larger datasets
"""

from repro.bench.context import BenchScale, build_store, STORE_NAMES
from repro.bench.reporting import format_table

__all__ = ["BenchScale", "build_store", "STORE_NAMES", "format_table"]

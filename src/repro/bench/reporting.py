"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
    float_fmt: str = "{:.3g}",
) -> str:
    """Render an aligned text table with a title banner."""
    str_rows = []
    for row in rows:
        str_rows.append(
            [
                float_fmt.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "  "
    lines = [f"== {title} =="]
    lines.append(sep.join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep.join("-" * w for w in widths))
    for row in str_rows:
        lines.append(sep.join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def mb(nbytes: float) -> float:
    """Bytes → MiB."""
    return nbytes / (1024 * 1024)


def kops(ops_per_s: float) -> float:
    """ops/s → kops/s."""
    return ops_per_s / 1000.0

"""Baseline key-value stores the paper compares against (§4.1).

* :class:`RocksDBStore` — the *embedding* architecture: one leveled LSM-tree
  whose top levels live on NVMe via ``db_paths`` and deeper levels on SATA.
* :class:`RocksDBSecondaryCacheStore` — the same LSM entirely on SATA, with
  NVMe used as a block-granularity secondary read cache.
* :class:`PrismDBStore` — the *caching* architecture: a slab-layout NVMe
  object store with clock-based hotness and cost-benefit demotion into a
  SATA LSM-tree.

All three run over the same simulated devices as HyperDB so comparisons
isolate the architectural differences the paper studies.
"""

from repro.baselines.rocksdb import RocksDBStore
from repro.baselines.rocksdb_sc import RocksDBSecondaryCacheStore
from repro.baselines.prismdb import PrismDBStore

__all__ = ["RocksDBStore", "RocksDBSecondaryCacheStore", "PrismDBStore"]

"""RocksDB with NVMe as a secondary read cache (paper baseline "RocksDB-SC").

The whole LSM-tree lives on the SATA device; the NVMe device caches data
blocks evicted from the DRAM block cache.  A hit in the secondary cache
costs an NVMe read (much cheaper than the SATA read it replaces); an
admission costs an NVMe write.  The paper's §4.2 finding this baseline
reproduces: only workloads that re-read recently written data (YCSB-D)
benefit — everything else pays the admission-write overhead.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.common.cache import LRUCache
from repro.core.interface import KVStore
from repro.lsm.lsmtree import DbPath, LSMOptions, LSMTree
from repro.simssd.device import SimDevice
from repro.simssd.fs import SimFilesystem
from repro.simssd.traffic import TrafficKind


class SecondaryBlockCache:
    """DRAM LRU in front of an NVMe-backed block cache.

    Implements the same duck-typed interface the SSTable read path uses
    (``get`` / ``put`` / ``invalidate``).  The NVMe layer charges device
    I/O: reads on hit, writes on admission, and occupies device capacity.
    """

    def __init__(
        self,
        device: SimDevice,
        dram_bytes: int,
        nvme_bytes: Optional[int] = None,
        admit_fraction: float = 0.95,
    ) -> None:
        self.device = device
        self.dram = LRUCache(dram_bytes)
        budget = nvme_bytes if nvme_bytes is not None else int(
            device.capacity_bytes * admit_fraction
        )
        self.nvme_budget = budget
        self._budget_pages = max(1, budget // device.page_size)
        self._entries: OrderedDict = OrderedDict()  # key -> (value, charge, pages)
        self._used_pages = 0
        #: Service time charged by the most recent ``get`` call (the caller
        #: treats cache hits as free; SC hits are not).
        self.last_get_service = 0.0
        self.hits = 0
        self.misses = 0

    # -- LRUCache-compatible surface ------------------------------------

    def take_service(self) -> float:
        """Return and reset the NVMe service accumulated by recent gets."""
        s = self.last_get_service
        self.last_get_service = 0.0
        return s

    def get(self, key, default=None):
        value = self.dram.get(key)
        if value is not None:
            self.hits += 1
            return value
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return default
        value, charge, _pages = entry
        self._entries.move_to_end(key)
        # Secondary-cache hit: pay an NVMe read, refresh into DRAM.
        self.last_get_service += self.device.read_bytes_io(
            charge, TrafficKind.FOREGROUND, sequential=False
        )
        self.dram.put(key, value, charge)
        self.hits += 1
        return value

    def put(self, key, value, charge: int = 1) -> None:
        self.dram.put(key, value, charge)
        self._admit(key, value, charge)

    def _admit(self, key, value, charge: int) -> None:
        pages = -(-charge // self.device.page_size)
        if pages > self._budget_pages:
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self._used_pages -= old[2]
            self.device.trim(old[2])
        while self._used_pages + pages > self._budget_pages and self._entries:
            _, (_, _, old_pages) = self._entries.popitem(last=False)
            self._used_pages -= old_pages
            self.device.trim(old_pages)
        self.device.allocate(pages)
        self.device.write_pages(pages, TrafficKind.GC, sequential=False)
        self._entries[key] = (value, charge, pages)
        self._used_pages += pages

    def invalidate(self, key) -> None:
        self.dram.invalidate(key)
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._used_pages -= entry[2]
            self.device.trim(entry[2])

    def __contains__(self, key) -> bool:
        return key in self.dram or key in self._entries


class RocksDBSecondaryCacheStore(KVStore):
    """The secondary-cache baseline."""

    name = "rocksdb-sc"

    def __init__(
        self,
        nvme_device: SimDevice,
        sata_device: SimDevice,
        options: Optional[LSMOptions] = None,
        dram_cache_bytes: int = 64 * 1024,
    ) -> None:
        self.nvme_device = nvme_device
        self.sata_device = sata_device
        self.sata_fs = SimFilesystem(sata_device)
        self.cache = SecondaryBlockCache(nvme_device, dram_cache_bytes)
        self.tree = LSMTree(
            [DbPath(self.sata_fs, target_bytes=1 << 62)],
            options or LSMOptions(),
            cache=self.cache,
        )

    def put(self, key: bytes, value: bytes) -> float:
        return self.tree.put(key, value)

    def get(self, key: bytes):
        self.cache.take_service()
        value, service = self.tree.get(key)
        return value, service + self.cache.take_service()

    def delete(self, key: bytes) -> float:
        return self.tree.delete(key)

    def scan(self, start: bytes, count: int):
        return self.tree.scan(start, count)

    def devices(self) -> dict[str, SimDevice]:
        return {"nvme": self.nvme_device, "sata": self.sata_device}

    def finalize(self) -> None:
        self.tree.flush()

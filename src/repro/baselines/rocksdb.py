"""RocksDB-like baseline: a leveled LSM-tree spanning tiers via ``db_paths``.

Matches the paper's baseline configuration (§4.1): default leveled
compaction, asynchronous (group-commit) WAL, a shared DRAM block cache, and
the NVMe device holding as many top levels as its budget allows — with the
paper's §2.3 caveat that a level cannot span storage tiers, which caps how
much of the fast device the tree can actually use.
"""

from __future__ import annotations

from typing import Optional

from repro.common.cache import LRUCache
from repro.core.interface import KVStore
from repro.lsm.lsmtree import DbPath, LSMOptions, LSMTree
from repro.simssd.device import SimDevice
from repro.simssd.fs import SimFilesystem


class RocksDBStore(KVStore):
    """The embedding-architecture baseline."""

    name = "rocksdb"

    def __init__(
        self,
        nvme_device: SimDevice,
        sata_device: SimDevice,
        options: Optional[LSMOptions] = None,
        dram_cache_bytes: int = 64 * 1024,
        nvme_budget_fraction: float = 0.9,
    ) -> None:
        self.nvme_device = nvme_device
        self.sata_device = sata_device
        self.nvme_fs = SimFilesystem(nvme_device)
        self.sata_fs = SimFilesystem(sata_device)
        self.cache = LRUCache(dram_cache_bytes)
        nvme_budget = int(nvme_device.capacity_bytes * nvme_budget_fraction)
        self.tree = LSMTree(
            [
                DbPath(self.nvme_fs, target_bytes=nvme_budget),
                DbPath(self.sata_fs, target_bytes=1 << 62),
            ],
            options or LSMOptions(),
            cache=self.cache,
        )

    def put(self, key: bytes, value: bytes) -> float:
        return self.tree.put(key, value)

    def get(self, key: bytes):
        return self.tree.get(key)

    def delete(self, key: bytes) -> float:
        return self.tree.delete(key)

    def _busy_hook(self, busy_out):
        """Per-op busy-row snapshotter handed to the tree's fused loops."""
        nvme_tr = self.nvme_device.traffic
        sata_tr = self.sata_device.traffic
        append = busy_out.append
        return lambda: append((nvme_tr._busy_s, sata_tr._busy_s))

    def put_many(self, keys, values, busy_out=None, capture_errors=False):
        if capture_errors:
            return super().put_many(keys, values, busy_out, capture_errors)
        if busy_out is None:
            return self.tree.put_many(keys, values)
        return self.tree.put_many(keys, values, busy_hook=self._busy_hook(busy_out))

    def get_many(self, keys, busy_out=None, capture_errors=False):
        if capture_errors:
            return super().get_many(keys, busy_out, capture_errors)
        if busy_out is None:
            return self.tree.get_many(keys)
        return self.tree.get_many(keys, busy_hook=self._busy_hook(busy_out))

    def delete_many(self, keys, busy_out=None, capture_errors=False):
        if capture_errors:
            return super().delete_many(keys, busy_out, capture_errors)
        if busy_out is None:
            return self.tree.delete_many(keys)
        return self.tree.delete_many(keys, busy_hook=self._busy_hook(busy_out))

    def scan(self, start: bytes, count: int):
        return self.tree.scan(start, count)

    def devices(self) -> dict[str, SimDevice]:
        return {"nvme": self.nvme_device, "sata": self.sata_device}

    def finalize(self) -> None:
        self.tree.flush()

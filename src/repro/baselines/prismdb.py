"""PrismDB-like baseline: the *caching* architecture (§2.2, §4.1).

NVMe holds a slab-layout object store (objects packed into size-class slabs
in insertion order — no key locality), with a clock-based hotness tracker.
When the NVMe tier fills past its watermark, the coldest objects are
gathered — scattered across slab pages, which is exactly the
read-amplification the paper measures in Fig. 2a — and merged into a
leveled LSM-tree on SATA.  Hot objects read from SATA are promoted back
into the slabs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import obs
from repro.common.btree import BTreeIndex
from repro.common.cache import LRUCache
from repro.common.errors import DeviceOfflineError, ReproError
from repro.common.records import Record
from repro.core.interface import KVStore
from repro.health.state import HealthState
from repro.lsm.blocks import decode_one
from repro.lsm.lsmtree import DbPath, LSMOptions, LSMTree
from repro.nvme.config import NVMeConfig
from repro.nvme.pagestore import PageStore
from repro.nvme.zone import SlotLocation, Zone
from repro.simssd.device import SimDevice
from repro.simssd.fs import SimFilesystem
from repro.simssd.traffic import TrafficKind


class ClockTracker:
    """Two-bit clock over resident objects (PrismDB's hotness mechanism).

    The sweep keeps a persistent hand: each call resumes where the last one
    stopped, decrementing counters as it passes, so a hot object is aged at
    most once per full revolution — not once per demotion batch.
    """

    def __init__(self, max_bits: int = 3) -> None:
        self.max_bits = max_bits
        self._bits: dict[bytes, int] = {}
        self._hand: bytes | None = None

    def access(self, key: bytes) -> None:
        self._bits[key] = self.max_bits

    def bits(self, key: bytes) -> int:
        return self._bits.get(key, 0)

    def forget(self, key: bytes) -> None:
        self._bits.pop(key, None)

    def sweep_cold(self, keys: list[bytes], want: int) -> list[bytes]:
        """Advance the hand, collecting up to ``want`` zero-bit victims.

        ``keys`` is the sorted resident key list; the hand wraps at most one
        full revolution per call.
        """
        if not keys:
            return []
        from bisect import bisect_left

        start = 0
        if self._hand is not None:
            start = bisect_left(keys, self._hand) % len(keys)
        cold: list[bytes] = []
        n = len(keys)
        i = 0
        while i < n and len(cold) < want:
            key = keys[(start + i) % n]
            bits = self._bits.get(key, 0)
            if bits == 0:
                cold.append(key)
            else:
                self._bits[key] = bits - 1
            i += 1
        self._hand = keys[(start + i) % n]
        return cold


class _SlabStore:
    """Size-class slabs over the NVMe device (insertion-order packing)."""

    def __init__(self, device: SimDevice, config: NVMeConfig, cache=None) -> None:
        self.device = device
        self.config = config
        self.cache = cache
        self.page_store = PageStore(device, cache=cache)
        self.index = BTreeIndex(order=64)
        # One keyless "zone" per slot class acts as that class's slab file.
        self._slabs: dict[int, Zone] = {}
        self._slab_seq = 0

    def _slab_for(self, slot_size: int) -> Zone:
        slab = self._slabs.get(slot_size)
        if slab is None:
            self._slab_seq += 1
            slab = Zone(self._slab_seq, None, self.page_store)
            self._slabs[slot_size] = slab
        return slab

    def put(self, rec: Record, kind=TrafficKind.FOREGROUND) -> float:
        # Epoch: the tombstone-then-rewrite path must not be torn by a
        # health window opening between its I/Os.
        with self.device.health_epoch:
            service = 0.0
            loc: Optional[SlotLocation] = self.index.get(rec.key)
            needed = rec.encoded_size
            if loc is not None and needed <= loc.slot_size:
                slab = self._slabs_by_zone(loc.zone_id)
                new_loc, s = slab.update_in_place(loc, rec, kind, self.cache)
                self.index.insert(rec.key, new_loc)
                return s
            if loc is not None:
                slab = self._slabs_by_zone(loc.zone_id)
                service += slab.write_tombstone(loc, kind, self.cache)
                slab.remove_object(rec.key, loc)
            slot_size = self.config.slot_class_for(needed)
            slab = self._slab_for(slot_size)
            new_loc, s = slab.write_record(rec, slot_size, kind, self.cache)
            service += s
            self.index.insert(rec.key, new_loc)
            return service

    def _slabs_by_zone(self, zone_id: int) -> Zone:
        for slab in self._slabs.values():
            if slab.zone_id == zone_id:
                return slab
        raise ReproError(f"no slab with zone id {zone_id}")

    def get(self, key: bytes, kind=TrafficKind.FOREGROUND):
        loc: Optional[SlotLocation] = self.index.get(key)
        if loc is None:
            return None, 0.0
        slab = self._slabs_by_zone(loc.zone_id)
        return slab.read_object(loc, kind, self.cache)

    def remove(self, key: bytes) -> None:
        loc: Optional[SlotLocation] = self.index.get(key)
        if loc is None:
            return
        slab = self._slabs_by_zone(loc.zone_id)
        slab.remove_object(key, loc)
        self.index.delete(key)

    def collect(self, keys: list[bytes], kind=TrafficKind.MIGRATION):
        """Read and remove ``keys``; returns records and charges the
        scattered page reads their slab placement requires."""
        pages: set[int] = set()
        located: list[tuple[bytes, SlotLocation]] = []
        for key in keys:
            loc = self.index.get(key)
            if loc is None:
                continue
            located.append((key, loc))
            pages.add(loc.page_id)
        _, service = self.page_store.read_many(sorted(pages), kind)
        out: list[Record] = []
        for key, loc in located:
            raw = self.page_store.peek(loc.page_id, loc.offset, loc.record_size)
            rec = decode_one(raw)
            out.append(Record(key, rec.value, rec.seqno, rec.deleted))
            slab = self._slabs_by_zone(loc.zone_id)
            slab.remove_object(key, loc)
            self.index.delete(key)
        out.sort(key=lambda r: r.key)
        return out, service, len(pages)

    @property
    def used_pages(self) -> int:
        return sum(s.total_pages() for s in self._slabs.values())

    def object_count(self) -> int:
        return len(self.index)

    def keys(self):
        return (k for k, _ in self.index.items())


class PrismDBStore(KVStore):
    """The caching-architecture baseline."""

    name = "prismdb"

    def __init__(
        self,
        nvme_device: SimDevice,
        sata_device: SimDevice,
        nvme_config: Optional[NVMeConfig] = None,
        lsm_options: Optional[LSMOptions] = None,
        dram_cache_bytes: int = 64 * 1024,
        promote_min_bits: int = 2,
    ) -> None:
        self.nvme_device = nvme_device
        self.sata_device = sata_device
        self.config = nvme_config or NVMeConfig()
        self.cache = LRUCache(dram_cache_bytes)
        self.slabs = _SlabStore(nvme_device, self.config, cache=self.cache)
        self.clock = ClockTracker()
        self.promote_min_bits = promote_min_bits
        # Clock bits exist per resident object; reads of capacity-tier keys
        # are remembered in a bounded recency window instead (a key read
        # twice within the window qualifies for promotion).
        horizon = max(
            1024, nvme_device.capacity_bytes // max(64, self.config.slot_classes[0])
        )
        self._recent_reads = LRUCache(horizon)
        self.sata_fs = SimFilesystem(sata_device)
        if lsm_options is not None and lsm_options.wal_enabled:
            raise ReproError(
                "PrismDB's SATA tree ingests already-durable batches: "
                "a WAL would double-log them"
            )
        if lsm_options is None:
            opts = LSMOptions(first_level=1, wal_enabled=False)
        else:
            from dataclasses import replace

            opts = replace(lsm_options, first_level=1)
        self.tree = LSMTree(
            [DbPath(self.sata_fs, target_bytes=1 << 62)], opts, cache=self.cache
        )
        self._seqno = 0
        self.demotion_jobs = 0
        self.demoted_objects = 0
        self.demotion_page_reads = 0
        self.promotions = 0
        # Degraded-mode accounting (tier outage failover).
        self.failover_writes = 0
        self.failover_blocked_reads = 0
        self.paused_demotions = 0
        self.requeued_objects = 0
        self.catch_up_drains = 0
        self._catch_up_pending = False

    # ------------------------------------------------------------- space

    def _page_budget(self) -> int:
        return self.nvme_device.profile.num_pages

    def _over_watermark(self) -> bool:
        return (
            self.slabs.used_pages
            >= self._page_budget() * self.config.high_watermark
        )

    def _below_low(self) -> bool:
        return (
            self.slabs.used_pages
            <= self._page_budget() * self.config.low_watermark
        )

    # --------------------------------------------------------------- ops

    def next_seqno(self) -> int:
        self._seqno += 1
        return self._seqno

    def put(self, key: bytes, value: bytes) -> float:
        return self._write_record(Record(key, value, self.next_seqno()))

    def delete(self, key: bytes) -> float:
        return self._write_record(Record.tombstone(key, self.next_seqno()))

    def _write_record(self, rec: Record) -> float:
        if self.nvme_device.health() is HealthState.OFFLINE:
            return self._failover_write(rec)
        self.clock.access(rec.key)
        service = self.slabs.put(rec)
        if self._over_watermark():
            self._demote()
        if self._catch_up_pending:
            self._run_catch_up()
        return service

    def _failover_write(self, rec: Record) -> float:
        """NVMe OFFLINE: write straight into the SATA tree.

        The stale slab-resident copy (if any) is forgotten in memory so it
        cannot shadow the newer SATA version after recovery.  Slab copies
        are always authoritative in PrismDB (promotion re-stamps seqnos),
        so there is no safe read fallthrough — but writes are absorbed.
        """
        service = self.tree.ingest_batch([rec], TrafficKind.FOREGROUND)
        self.slabs.remove(rec.key)
        self.clock.forget(rec.key)
        self.failover_writes += 1
        r = obs.RECORDER
        if r is not None:
            r.emit(
                "failover", t=self.sata_device.busy_seconds(),
                op="write", tier="sata",
            )
        return service

    def get(self, key: bytes):
        nvme_offline = self.nvme_device.health() is HealthState.OFFLINE
        if nvme_offline:
            if self.slabs.index.get(key) is not None:
                # The slab copy is the only current version.
                self.failover_blocked_reads += 1
                raise DeviceOfflineError(
                    f"key resident only on offline device "
                    f"{self.nvme_device.profile.name!r}"
                )
            service = 0.0
        else:
            rec, service = self.slabs.get(key)
            if rec is not None:
                self.clock.access(key)
                return (None if rec.is_tombstone else rec.value), service
        # Promotion eligibility is judged on history *before* this access —
        # otherwise every capacity-tier read would self-qualify and thrash.
        seen_recently = self._recent_reads.get(key) is not None
        self._recent_reads.put(key, True, charge=1)
        value, s = self.tree.get(key)
        service += s
        if value is not None and seen_recently and not nvme_offline:
            # Promote: install the object back into the slabs.
            promoted = Record(key, value, self.next_seqno())
            self.slabs.put(promoted, TrafficKind.MIGRATION)
            self.clock.access(key)
            self.promotions += 1
            if self._over_watermark():
                self._demote()
        return value, service

    def scan(self, start: bytes, count: int):
        busy_before = self.nvme_device.busy_seconds() + self.sata_device.busy_seconds()
        from repro.lsm.iterator import merge_records

        def slab_stream():
            for key, _ in self.slabs.index.items(start=start):
                rec, _s = self.slabs.get(key)
                if rec is not None:
                    yield rec

        sata_pairs, _ = self.tree.scan(start, count * 2)
        sata_records = iter(
            Record(k, v, 0) for k, v in sata_pairs
        )
        out = []
        for rec in merge_records([slab_stream(), sata_records], drop_tombstones=True):
            out.append((rec.key, rec.value))
            if len(out) >= count:
                break
        service = (
            self.nvme_device.busy_seconds()
            + self.sata_device.busy_seconds()
            - busy_before
        )
        return out, service

    # ----------------------------------------------------------- demotion

    def _demote(self) -> None:
        if self.sata_device.health() is HealthState.OFFLINE:
            # Capacity tier down: pause demotion, catch up after recovery.
            self._pause_demotion()
            return
        rounds = 0
        while self._over_watermark() and not self._below_low() and rounds < 64:
            victims = self._select_demotion_window()
            if not victims:
                break
            batch, _, pages = self.slabs.collect(victims, TrafficKind.MIGRATION)
            if batch:
                try:
                    self.tree.ingest_batch(batch, TrafficKind.MIGRATION)
                except DeviceOfflineError:
                    # The window opened between collect and ingest (the
                    # ingest epoch rejects atomically): put the batch back
                    # whole and queue a catch-up pass.
                    for rec in batch:
                        self.slabs.put(rec, TrafficKind.MIGRATION)
                    self.requeued_objects += len(batch)
                    self._pause_demotion()
                    return
                self.demoted_objects += len(batch)
                self.demotion_page_reads += pages
                for rec in batch:
                    self.clock.forget(rec.key)
            self.demotion_jobs += 1
            rounds += 1

    def _pause_demotion(self) -> None:
        self.paused_demotions += 1
        self._catch_up_pending = True
        r = obs.RECORDER
        if r is not None:
            r.emit(
                "migration_paused", t=self.nvme_device.busy_seconds(),
                engine=self.name,
            )

    def _run_catch_up(self) -> None:
        """Drain the deferred demotion exactly once after SATA recovery."""
        if self.sata_device.health() is HealthState.OFFLINE:
            return
        self._catch_up_pending = False
        self.catch_up_drains += 1
        r = obs.RECORDER
        if r is not None:
            r.emit(
                "migration_catchup", t=self.nvme_device.busy_seconds(),
                engine=self.name,
            )
        if self._over_watermark():
            self._demote()

    def _select_demotion_window(self) -> list[bytes]:
        """Cost-benefit range selection (PrismDB's multi-tiered compaction):
        demote the key-contiguous resident window with the most cold bytes,
        so the SATA merge overlaps few SSTables even though the objects'
        NVMe pages are scattered."""
        residents = list(self.slabs.keys())
        if not residents:
            return []
        avg = max(
            32,
            self.slabs.used_pages
            * self.nvme_device.page_size
            // max(1, len(residents)),
        )
        want = max(16, self.config.migration_batch_bytes // avg)
        want = min(want, len(residents))
        # Start the window search at the demotion hand so that ties (no cold
        # anywhere, e.g. right after load) rotate around the ring instead of
        # repeatedly draining — and thereby sparsifying — the lowest keys.
        from bisect import bisect_left

        start = 0
        if getattr(self, "_demote_hand", None) is not None:
            start = bisect_left(residents, self._demote_hand) % len(residents)
        bits = np.array([self.clock.bits(k) for k in residents])
        coldness = (bits == 0).astype(np.int32)
        if len(residents) <= want:
            best = 0
        else:
            window_cold = np.convolve(coldness, np.ones(want, dtype=np.int32), "valid")
            maxv = window_cold.max()
            candidates = np.flatnonzero(window_cold == maxv)
            after = candidates[candidates >= min(start, len(window_cold) - 1)]
            best = int(after[0] if len(after) else candidates[0])
        window = residents[best : best + want]
        self._demote_hand = window[-1]
        # The hand passes over the chosen window: age what it skips.
        chosen = [k for k in window if self.clock.bits(k) == 0]
        for k in window:
            b = self.clock.bits(k)
            if b > 0:
                self.clock._bits[k] = b - 1
        if len(chosen) < want // 2:
            # Not enough truly-cold objects: demote the lukewarm too (the
            # tier must shrink regardless).
            chosen = [k for k in window if self.clock.bits(k) <= 1] or window
        return chosen

    # -------------------------------------------------------------- admin

    def devices(self) -> dict[str, SimDevice]:
        return {"nvme": self.nvme_device, "sata": self.sata_device}

    def finalize(self) -> None:
        self.tree.maybe_compact()

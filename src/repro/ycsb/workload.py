"""YCSB core workload definitions."""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

from repro.common.errors import ConfigError

#: How far an op mix may drift from summing to 1.0 before it is rejected.
#: Mixes built from float arithmetic (``1 - 0.95 - 0.04``) drift by ~1e-8,
#: which is also past numpy's ``rng.choice`` probability tolerance
#: (sqrt(eps) ≈ 1.5e-8) — so drifting mixes are accepted here and
#: normalized by the runner rather than rejected or crashed on.
MIX_TOLERANCE = 1e-6


class OpType(Enum):
    READ = "read"
    UPDATE = "update"
    INSERT = "insert"
    SCAN = "scan"
    RMW = "rmw"  # read-modify-write


@dataclass(frozen=True)
class WorkloadSpec:
    """One YCSB workload: operation mix + request distribution.

    ``distribution`` is one of ``"zipfian"``, ``"uniform"``, ``"latest"``.
    Proportions must sum to 1.
    """

    name: str
    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    scan: float = 0.0
    rmw: float = 0.0
    distribution: str = "zipfian"
    theta: float = 0.99
    scan_length: int = 50  # the paper's default range-query length

    def __post_init__(self) -> None:
        for op in ("read", "update", "insert", "scan", "rmw"):
            if getattr(self, op) < 0:
                raise ConfigError(f"{self.name}: {op} proportion is negative")
        total = self.read + self.update + self.insert + self.scan + self.rmw
        if abs(total - 1.0) > MIX_TOLERANCE:
            raise ConfigError(f"{self.name}: op mix sums to {total}, expected 1")
        if self.distribution not in ("zipfian", "uniform", "latest"):
            raise ConfigError(f"unknown distribution {self.distribution!r}")

    def with_distribution(self, distribution: str, theta: float | None = None) -> "WorkloadSpec":
        return replace(
            self,
            distribution=distribution,
            theta=self.theta if theta is None else theta,
        )

    @property
    def is_write_heavy(self) -> bool:
        return self.update + self.insert + self.rmw >= 0.5


#: The standard YCSB core workloads (§4.1: "industry-standard YCSB
#: benchmarks" with both uniform and skewed distributions).
YCSB_WORKLOADS: dict[str, WorkloadSpec] = {
    "A": WorkloadSpec("A", read=0.5, update=0.5),
    "B": WorkloadSpec("B", read=0.95, update=0.05),
    "C": WorkloadSpec("C", read=1.0),
    "D": WorkloadSpec("D", read=0.95, insert=0.05, distribution="latest"),
    "E": WorkloadSpec("E", scan=0.95, insert=0.05),
    "F": WorkloadSpec("F", read=0.5, rmw=0.5),
}

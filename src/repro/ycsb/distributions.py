"""Request-key distributions used by YCSB.

The zipfian generator follows the YCSB implementation (Gray et al.'s
"Quickly generating billion-record synthetic databases" rejection-free
method), including the *scrambled* variant that hashes ranks so popular
keys spread across the whole key space.
"""

from __future__ import annotations

import numpy as np


class UniformGenerator:
    """Uniform over ``[0, item_count)``."""

    def __init__(self, item_count: int, rng: np.random.Generator) -> None:
        if item_count <= 0:
            raise ValueError(f"item_count must be positive, got {item_count}")
        self.item_count = item_count
        self.rng = rng

    def next(self) -> int:
        return int(self.rng.integers(0, self.item_count))

    def next_many(self, n: int) -> np.ndarray:
        """Draw ``n`` keys in one vectorized call."""
        return self.rng.integers(0, self.item_count, size=n)

    def set_item_count(self, n: int) -> None:
        self.item_count = n


class ZipfianGenerator:
    """Zipfian over ranks ``[0, item_count)``; rank 0 is the most popular.

    ``theta`` is the skew constant (YCSB default 0.99).  Uses the
    closed-form inverse-CDF approximation from the YCSB source.
    """

    def __init__(
        self, item_count: int, rng: np.random.Generator, theta: float = 0.99
    ) -> None:
        if item_count <= 0:
            raise ValueError(f"item_count must be positive, got {item_count}")
        if not 0.0 < theta < 2.0 or theta == 1.0:
            raise ValueError(f"theta must be in (0,2) excluding 1, got {theta}")
        self.rng = rng
        self.theta = theta
        self._configure(item_count)

    def _configure(self, n: int) -> None:
        self.item_count = n
        self.zetan = self._zeta(n, self.theta)
        self.zeta2 = self._zeta(2, self.theta)
        self.alpha = 1.0 / (1.0 - self.theta)
        self.eta = (1 - (2.0 / n) ** (1 - self.theta)) / (1 - self.zeta2 / self.zetan)

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        # Exact for small n; Euler–Maclaurin tail approximation for large n
        # keeps construction O(1)-ish without precomputing millions of terms.
        cutoff = min(n, 10_000)
        s = float(np.sum(1.0 / np.arange(1, cutoff + 1) ** theta))
        if n > cutoff:
            # integral of x^-theta from cutoff to n plus half-correction
            s += (n ** (1 - theta) - cutoff ** (1 - theta)) / (1 - theta)
            s += 0.5 * (1.0 / n**theta - 1.0 / cutoff**theta)
        return s

    def next(self) -> int:
        """Draw one zipfian rank via the closed-form inverse CDF."""
        u = self.rng.random()
        uz = u * self.zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5**self.theta:
            return 1
        rank = int(self.item_count * max(self.eta * u - self.eta + 1.0, 0.0) ** self.alpha)
        # The approximation reaches item_count exactly as u -> 1; clamp into
        # [0, item_count) so the tail draw stays a valid rank.
        return min(rank, self.item_count - 1)

    def next_many(self, n: int) -> np.ndarray:
        """Draw ``n`` zipfian ranks in one vectorized call.

        Consumes the RNG stream identically to ``n`` calls of :meth:`next`
        (one uniform draw per rank), so batched and serial generation
        produce the same sequence.
        """
        u = self.rng.random(n)
        uz = u * self.zetan
        with np.errstate(divide="ignore", over="ignore"):
            vals = self.item_count * np.maximum(
                self.eta * u - self.eta + 1.0, 0.0
            ) ** self.alpha
        vals = np.minimum(vals, float(self.item_count - 1))
        ranks = vals.astype(np.int64)
        ranks[uz < 1.0 + 0.5**self.theta] = 1
        ranks[uz < 1.0] = 0
        return ranks

    def set_item_count(self, n: int) -> None:
        if n != self.item_count:
            self._configure(n)


_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv1a_64(value: int) -> int:
    """FNV-1a hash of an integer's 8 bytes (YCSB's key scrambler)."""
    h = _FNV_OFFSET
    for _ in range(8):
        h ^= value & 0xFF
        h = (h * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
        value >>= 8
    return h


def fnv1a_64_many(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`fnv1a_64` over an integer array (uint64 results)."""
    v = np.asarray(values).astype(np.uint64)
    h = np.full(v.shape, _FNV_OFFSET, dtype=np.uint64)
    prime = np.uint64(_FNV_PRIME)
    byte_mask = np.uint64(0xFF)
    with np.errstate(over="ignore"):
        for shift in range(0, 64, 8):
            h = (h ^ ((v >> np.uint64(shift)) & byte_mask)) * prime
    return h


class ScrambledZipfianGenerator:
    """Zipfian ranks hashed over the key space — YCSB's request default."""

    def __init__(
        self, item_count: int, rng: np.random.Generator, theta: float = 0.99
    ) -> None:
        self.item_count = item_count
        self._zipf = ZipfianGenerator(item_count, rng, theta)

    def next(self) -> int:
        rank = self._zipf.next()
        return fnv1a_64(rank) % self.item_count

    def next_many(self, n: int) -> np.ndarray:
        """Draw ``n`` scrambled keys; RNG-stream-identical to ``n`` nexts."""
        ranks = self._zipf.next_many(n)
        return (fnv1a_64_many(ranks) % np.uint64(self.item_count)).astype(np.int64)

    def set_item_count(self, n: int) -> None:
        self.item_count = n
        self._zipf.set_item_count(n)


class LatestGenerator:
    """YCSB's "latest" distribution: recency-skewed toward newest inserts."""

    def __init__(
        self, item_count: int, rng: np.random.Generator, theta: float = 0.99
    ) -> None:
        self._zipf = ZipfianGenerator(item_count, rng, theta)
        self.item_count = item_count

    def next(self) -> int:
        rank = self._zipf.next()
        return max(0, self.item_count - 1 - rank)

    def next_many(self, n: int) -> np.ndarray:
        """Draw ``n`` recency-skewed keys; RNG-stream-identical to ``n`` nexts."""
        ranks = self._zipf.next_many(n)
        return np.maximum(0, self.item_count - 1 - ranks)

    def set_item_count(self, n: int) -> None:
        self.item_count = n
        self._zipf.set_item_count(n)

"""YCSB workload suite (Cooper et al., SoCC '10) and the closed-loop runner.

Implements the standard core workloads A–F with zipfian / uniform / latest
request distributions, plus the runner that executes a workload against any
:class:`repro.core.interface.KVStore` and converts the simulator's exact
I/O accounting into throughput and latency figures via the documented
concurrency model.
"""

from repro.ycsb.distributions import (
    UniformGenerator,
    ZipfianGenerator,
    ScrambledZipfianGenerator,
    LatestGenerator,
)
from repro.ycsb.workload import WorkloadSpec, YCSB_WORKLOADS, OpType
from repro.ycsb.runner import WorkloadRunner, RunResult
from repro.ycsb.trace import Trace, TraceOp, ReplayResult

__all__ = [
    "UniformGenerator",
    "ZipfianGenerator",
    "ScrambledZipfianGenerator",
    "LatestGenerator",
    "WorkloadSpec",
    "YCSB_WORKLOADS",
    "OpType",
    "WorkloadRunner",
    "RunResult",
    "Trace",
    "TraceOp",
    "ReplayResult",
]

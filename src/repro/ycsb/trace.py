"""Workload traces: record, save, load, and replay operation sequences.

The paper's Fig. 6a methodology is "construct and replay a workload"; this
module makes that a first-class object.  A :class:`Trace` is an ordered list
of operations that can be captured from a generator-driven run, persisted to
a compact text format, fed to :func:`repro.hotness.interval` analyses, or
replayed deterministically against any :class:`repro.core.interface.KVStore`
— useful for A/B-ing engines on *exactly* the same request sequence.

Format (one op per line)::

    put <key_id> <value_size>
    get <key_id>
    delete <key_id>
    scan <key_id> <count>
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional

import numpy as np

from repro.common.errors import ReproError
from repro.common.keys import encode_key
from repro.core.interface import KVStore
from repro.ycsb.distributions import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
)
from repro.ycsb.workload import WorkloadSpec


@dataclass(frozen=True, slots=True)
class TraceOp:
    """One operation of a trace."""

    op: str              # "put" | "get" | "delete" | "scan"
    key_id: int
    arg: int = 0         # value size for put, count for scan

    def __post_init__(self) -> None:
        if self.op not in ("put", "get", "delete", "scan"):
            raise ReproError(f"unknown trace op {self.op!r}")
        if self.key_id < 0 or self.arg < 0:
            raise ReproError("trace fields must be non-negative")


@dataclass
class Trace:
    """An ordered, replayable operation sequence."""

    ops: list[TraceOp] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[TraceOp]:
        return iter(self.ops)

    def append(self, op: TraceOp) -> None:
        self.ops.append(op)

    # ------------------------------------------------------------ analysis

    def access_sequence(self) -> list[int]:
        """The key ids in access order (input to the Fig. 6a interval
        analysis)."""
        return [o.key_id for o in self.ops]

    def key_count(self) -> int:
        return len({o.key_id for o in self.ops})

    # ---------------------------------------------------------- persistence

    def save(self, path: str | Path) -> None:
        """Write the compact text format."""
        lines = []
        for o in self.ops:
            if o.op in ("put", "scan"):
                lines.append(f"{o.op} {o.key_id} {o.arg}")
            else:
                lines.append(f"{o.op} {o.key_id}")
        Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Parse the text format, validating every line."""
        trace = cls()
        for lineno, line in enumerate(Path(path).read_text().splitlines(), 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            try:
                if parts[0] in ("put", "scan"):
                    trace.append(TraceOp(parts[0], int(parts[1]), int(parts[2])))
                elif parts[0] in ("get", "delete"):
                    trace.append(TraceOp(parts[0], int(parts[1])))
                else:
                    raise ValueError(parts[0])
            except (IndexError, ValueError) as exc:
                raise ReproError(f"{path}:{lineno}: bad trace line {line!r}") from exc
        return trace

    # ------------------------------------------------------------- capture

    @classmethod
    def from_workload(
        cls,
        spec: WorkloadSpec,
        operations: int,
        record_count: int,
        value_size: int = 128,
        seed: int = 0,
    ) -> "Trace":
        """Generate a trace from a YCSB workload spec (deterministic)."""
        rng = np.random.default_rng(seed)
        n = record_count
        if spec.distribution == "uniform":
            gen = UniformGenerator(n, rng)
        elif spec.distribution == "latest":
            gen = LatestGenerator(n, rng, spec.theta)
        else:
            gen = ScrambledZipfianGenerator(n, rng, spec.theta)
        mix = np.array([spec.read, spec.update, spec.insert, spec.scan, spec.rmw])
        names = ("get", "put", "insert", "scan", "rmw")
        insert_code = names.index("insert")
        choices = rng.choice(len(names), size=operations, p=mix)
        trace = cls()
        inserted = 0
        # Key ids are drawn in contiguous batches between inserts (inserts
        # are the only ops that change the generator's item count), which
        # lets the generators vectorize while consuming the RNG stream
        # exactly as per-op draws would.
        i = 0
        total = len(choices)
        while i < total:
            if choices[i] == insert_code:
                trace.append(TraceOp("put", record_count + inserted, value_size))
                inserted += 1
                gen.set_item_count(record_count + inserted)
                i += 1
                continue
            j = i
            while j < total and choices[j] != insert_code:
                j += 1
            kids = gen.next_many(j - i)
            for c, kid_raw in zip(choices[i:j], kids):
                op = names[c]
                kid = int(kid_raw)
                if op == "get":
                    trace.append(TraceOp("get", kid))
                elif op == "put":
                    trace.append(TraceOp("put", kid, value_size))
                elif op == "scan":
                    trace.append(TraceOp("scan", kid, spec.scan_length))
                else:  # rmw
                    trace.append(TraceOp("get", kid))
                    trace.append(TraceOp("put", kid, value_size))
            i = j
        return trace

    # -------------------------------------------------------------- replay

    def replay(
        self, store: KVStore, value_fill: bytes = b"x", seed: int = 0
    ) -> "ReplayResult":
        """Run the trace against ``store``; returns aggregate statistics.

        Values are deterministic functions of (key, size) so two engines
        replaying the same trace store identical data.
        """
        result = ReplayResult()
        for o in self.ops:
            key = encode_key(o.key_id)
            if o.op == "put":
                value = (value_fill * (o.arg // len(value_fill) + 1))[: o.arg]
                result.service_s += store.put(key, value)
                result.puts += 1
            elif o.op == "get":
                value, s = store.get(key)
                result.service_s += s
                result.gets += 1
                if value is not None:
                    result.hits += 1
            elif o.op == "delete":
                result.service_s += store.delete(key)
                result.deletes += 1
            else:
                pairs, s = store.scan(key, o.arg)
                result.service_s += s
                result.scans += 1
                result.scanned_records += len(pairs)
        store.finalize()
        return result


@dataclass
class ReplayResult:
    """What a trace replay did and what it cost."""

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    scans: int = 0
    hits: int = 0
    scanned_records: int = 0
    service_s: float = 0.0

    @property
    def operations(self) -> int:
        return self.puts + self.gets + self.deletes + self.scans

    @property
    def hit_rate(self) -> float:
        return self.hits / self.gets if self.gets else 0.0

"""Closed-loop workload execution and the simulated-time performance model.

The runner executes a workload against a store, recording each operation's
foreground service time (exact, from the device cost model).  Throughput and
latency are then derived:

* **elapsed time** — clients and background threads overlap, but a device's
  data channel does not::

      elapsed = max( (cpu + fg_service) / clients,
                     max over devices of
                        transfer + fg_latency/clients + bg_latency/bg_threads )

  Transfer time (bytes/bandwidth) serializes on the device; per-command
  latency overlaps across concurrent requesters.  More background threads
  therefore let compaction consume more real bandwidth (paper Fig. 3a).

* **per-op latency** — the op's service time plus an M/M/1-style queueing
  penalty ``share(d) × ρ(d)/(1−ρ(d)) × Exp(1)`` summed over the devices the
  op actually touched (attributed by observing per-device busy-time deltas
  around each call).  An NVMe-only put does not queue behind SATA
  compaction, but a capacity-tier read does — so P99 responds to background
  pressure (paper Figs. 8b/8c, 10).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro import obs
from repro.common.keys import encode_key, encode_keys
from repro.common.stats import LatencyHistogram
from repro.core.interface import KVStore
from repro.ycsb.distributions import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
)
from repro.ycsb.workload import MIX_TOLERANCE, OpType, WorkloadSpec

#: CPU cost per operation (request parsing, index walk) in seconds.  Small
#: enough that devices dominate, large enough to bound ops/s per core.
CPU_PER_OP = 3e-6
#: Extra CPU per byte of value handled (checksum, memcpy).
CPU_PER_BYTE = 2e-10


@dataclass
class RunResult:
    """Everything a benchmark needs from one workload execution."""

    store_name: str
    workload_name: str
    operations: int
    clients: int
    background_threads: int
    elapsed_s: float
    throughput_ops: float
    latency_by_op: Dict[str, LatencyHistogram]
    #: Per-device traffic deltas for the run phase: device -> lane -> bytes.
    traffic: Dict[str, Dict[str, Dict[str, float]]]
    #: Device utilization over the run phase (busy / elapsed).
    utilization: Dict[str, float]
    space_used: Dict[str, int]

    @property
    def overall_latency(self) -> LatencyHistogram:
        """All ops' samples combined, as a fresh histogram.

        The combine path must neither mutate nor alias the per-op
        histograms: this property doubles as the reducer for sharded
        runs (``repro.parallel.merge``), where the sources stay live
        and are merged repeatedly.  ``merge`` copies samples into the
        new histogram's own buffer, so writes to the returned histogram
        can never reach ``latency_by_op`` (regression-tested in
        tests/test_parallel_merge.py).
        """
        total = sum(h.count for h in self.latency_by_op.values())
        merged = LatencyHistogram(initial_capacity=max(16, total))
        for hist in self.latency_by_op.values():
            merged.merge(hist)
        return merged

    def median_latency(self, op: Optional[str] = None) -> float:
        hist = self.overall_latency if op is None else self.latency_by_op.get(op)
        return hist.median if hist else 0.0

    def p99_latency(self, op: Optional[str] = None) -> float:
        hist = self.overall_latency if op is None else self.latency_by_op.get(op)
        return hist.p99 if hist else 0.0

    def write_bytes(self, device: str, kind: Optional[str] = None) -> float:
        """Bytes written on ``device`` (optionally one lane) during the run.

        Unknown device or lane names mean "no such traffic happened", so
        they answer 0.0 instead of raising — benchmark tables probe lanes
        (e.g. ``gc``) that some stores never exercise.
        """
        lanes = self.traffic.get(device)
        if lanes is None:
            return 0.0
        if kind is not None:
            return lanes.get(kind, {}).get("write_bytes", 0.0)
        return sum(l["write_bytes"] for l in lanes.values())

    def read_bytes(self, device: str, kind: Optional[str] = None) -> float:
        """Bytes read on ``device`` during the run; 0.0 for unknown names."""
        lanes = self.traffic.get(device)
        if lanes is None:
            return 0.0
        if kind is not None:
            return lanes.get(kind, {}).get("read_bytes", 0.0)
        return sum(l["read_bytes"] for l in lanes.values())


class WorkloadRunner:
    """Loads a store and executes YCSB workloads against it."""

    #: Recognized execution modes (see ``mode`` below).
    MODES = ("per-op", "batched", "columnar")

    def __init__(
        self,
        store: KVStore,
        record_count: int,
        value_size: int = 128,
        clients: int = 8,
        background_threads: int = 8,
        seed: int = 0,
        batched: bool = True,
        mode: Optional[str] = None,
    ) -> None:
        if record_count <= 0:
            raise ValueError(f"record_count must be positive, got {record_count}")
        self.store = store
        #: Execution mode for the run phase.  All three produce
        #: bit-identical results (same calls in the same order, same float
        #: accumulation), so the choice is purely a hot-path dispatch
        #: optimization:
        #:
        #: * ``per-op`` — one Python call chain per op (the traceable
        #:   reference path; forced whenever per-op tracing is installed);
        #: * ``batched`` — contiguous same-type op slices carried through
        #:   the store's batch API, per-op attribution loop;
        #: * ``columnar`` — batched dispatch plus a vectorized epilogue:
        #:   busy-delta attribution, queueing shares, and histogram fills
        #:   are numpy array passes over the whole op stream.
        if mode is None:
            mode = "batched" if batched else "per-op"
        if mode not in self.MODES:
            raise ValueError(f"unknown runner mode {mode!r}; have {self.MODES}")
        self.mode = mode
        #: Back-compat flag: True for any batch-dispatch mode.
        self.batched = mode != "per-op"
        self.record_count = record_count
        self.value_size = value_size
        self.clients = clients
        self.background_threads = background_threads
        self.rng = np.random.default_rng(seed)
        self._insert_count = 0
        self._value_pool = self.rng.integers(
            0, 256, size=max(4096, value_size * 4), dtype=np.uint8
        ).tobytes()

    # ---------------------------------------------------------------- load

    def _value(self, key_id: int) -> bytes:
        start = (key_id * 131) % (len(self._value_pool) - self.value_size)
        return self._value_pool[start : start + self.value_size]

    def load(self, shuffle: bool = True) -> float:
        """Insert the initial dataset (random order, like the paper's load
        phase).  Returns total foreground service seconds."""
        scope = (
            obs.MetricScope("load", self.store.devices())
            if obs.RECORDER is not None
            else nullcontext()
        )
        with scope:
            ids = np.arange(self.record_count)
            if shuffle:
                self.rng.shuffle(ids)
            total = 0.0
            if self.batched:
                keys = encode_keys(ids)
                pool = self._value_pool
                vs = self.value_size
                starts = ((ids * 131) % (len(pool) - vs)).tolist()
                values = [pool[s : s + vs] for s in starts]
                for s in self.store.put_many(keys, values):
                    total += s
            else:
                for kid in ids:
                    total += self.store.put(
                        encode_key(int(kid)), self._value(int(kid))
                    )
            self.store.finalize()
        return total

    # ----------------------------------------------------------------- run

    def _make_generator(self, spec: WorkloadSpec):
        n = self.record_count + self._insert_count
        if spec.distribution == "uniform":
            return UniformGenerator(n, self.rng)
        if spec.distribution == "latest":
            return LatestGenerator(n, self.rng, spec.theta)
        return ScrambledZipfianGenerator(n, self.rng, spec.theta)

    def run(self, spec: WorkloadSpec, operations: int) -> RunResult:
        """Execute ``operations`` requests of the given workload."""
        devices = self.store.devices()
        snap_before = {name: d.traffic.snapshot() for name, d in devices.items()}
        #: Multi-queue devices get per-queue traffic deltas so the service
        #: model can overlap queues.  Empty for the classic single-queue
        #: fleet, in which case every model below follows the exact
        #: historical code path (digest byte-identity at queue_count=1).
        mq_devices = {
            name: d for name, d in devices.items()
            if getattr(d, "queue_count", 1) > 1
        }
        qsnap_before = {
            name: devices[name].traffic.queue_snapshot() for name in mq_devices
        }

        generator = self._make_generator(spec)
        mix = np.array(
            [spec.read, spec.update, spec.insert, spec.scan, spec.rmw],
            dtype=np.float64,
        )
        total_mix = float(mix.sum())
        if (
            not np.all(np.isfinite(mix))
            or np.any(mix < 0)
            or abs(total_mix - 1.0) > MIX_TOLERANCE
        ):
            raise ValueError(
                f"workload {spec.name!r}: op mix must be non-negative and sum "
                f"to 1.0 (±{MIX_TOLERANCE:g}), got {mix.tolist()} "
                f"(sum {total_mix!r})"
            )
        if total_mix != 1.0:
            # Tiny float drift (1 - 0.95 - 0.04 ≈ 0.01 + 8e-18) is past
            # rng.choice's own tolerance; renormalize so it always accepts.
            # Skipped for exact mixes so their RNG draw stays bit-identical.
            mix = mix / total_mix
        ops = (OpType.READ, OpType.UPDATE, OpType.INSERT, OpType.SCAN, OpType.RMW)
        choices = self.rng.choice(len(ops), size=operations, p=mix)

        service_samples: dict[OpType, list[float]] = {op: [] for op in ops}
        #: Per-op device shares, parallel to service_samples[op]: which
        #: device served the op's foreground I/O (for queue attribution).
        device_shares: dict[OpType, list[dict[str, float]]] = {op: [] for op in ops}
        device_names = list(devices)
        device_objs = list(devices.values())
        choice_list: list[int] = choices.tolist()  # python ints iterate faster

        trace = obs.RECORDER
        col_state = None
        if self.mode == "columnar" and trace is None:
            cpu_total, fg_service_total, col_state = self._run_columnar(
                spec, ops, choice_list, generator, device_objs,
            )
        elif self.batched and trace is None:
            cpu_total, fg_service_total = self._run_batched(
                spec, ops, choice_list, generator,
                device_names, device_objs, service_samples, device_shares,
            )
        else:
            cpu_total, fg_service_total = self._run_per_op(
                spec, ops, choice_list, generator,
                device_names, device_objs, service_samples, device_shares,
                trace,
            )

        self.store.finalize()
        snap_after = {name: d.traffic.snapshot() for name, d in devices.items()}
        traffic = _diff_snapshots(snap_before, snap_after)
        if trace is not None:
            # The run phase's traffic delta is already computed above, so
            # publish it directly instead of re-snapshotting via MetricScope.
            trace.note_phase(
                {"phase": "run", "workload": spec.name, "traffic": traffic}
            )

        queue_traffic = None
        if mq_devices:
            queue_traffic = {}
            for name in mq_devices:
                after = devices[name].traffic.queue_snapshot()
                queue_traffic[name] = [
                    _diff_snapshots({name: b}, {name: a})[name]
                    for b, a in zip(qsnap_before[name], after)
                ]

        elapsed = self._elapsed(
            traffic, cpu_total, fg_service_total, queue_traffic, mq_devices
        )
        # Foreground ops on a multi-queue device only contend with their
        # own queue's traffic — background queues don't inflate the
        # queueing penalty (that is the isolation the queues buy).
        rho_by_device = {
            name: min(
                0.95,
                _busy_seconds(
                    queue_traffic[name][0]
                    if queue_traffic is not None and name in queue_traffic
                    else traffic[name]
                )
                / elapsed,
            )
            for name in traffic
        }
        if col_state is not None:
            latency_by_op = self._latencies_columnar(
                ops, col_state, device_names, rho_by_device
            )
        else:
            latency_by_op = self._latencies(
                service_samples, device_shares, rho_by_device
            )

        utilization = {}
        for name, dev in devices.items():
            busy = _busy_seconds(traffic[name])
            capacity = elapsed * getattr(dev, "queue_count", 1)
            utilization[name] = min(1.0, busy / capacity) if elapsed > 0 else 0.0

        return RunResult(
            store_name=self.store.name,
            workload_name=spec.name,
            operations=operations,
            clients=self.clients,
            background_threads=self.background_threads,
            elapsed_s=elapsed,
            throughput_ops=operations / elapsed if elapsed > 0 else 0.0,
            latency_by_op=latency_by_op,
            traffic=traffic,
            utilization=utilization,
            space_used={n: d.used_bytes for n, d in devices.items()},
        )

    # --------------------------------------------------- execution engines

    def _run_per_op(
        self, spec, ops, choice_list, generator,
        device_names, device_objs, service_samples, device_shares, trace,
    ) -> tuple[float, float]:
        """One Python call chain per op (the traceable reference path)."""
        cpu_total = 0.0
        fg_service_total = 0.0
        # Request keys are drawn in contiguous batches between inserts (the
        # only ops that change the generator's item count): vectorized draws
        # that consume the RNG stream exactly as per-op draws would.
        insert_code = ops.index(OpType.INSERT)
        n_choices = len(choice_list)
        key_buf: "np.ndarray | list[int]" = []
        buf_pos = 0
        for i, op_idx in enumerate(choice_list):
            op = ops[op_idx]
            busy_before = [d.busy_seconds() for d in device_objs]
            if trace is not None:
                op_t0 = sum(busy_before)
                trace.begin("op", t=op_t0, op=op.value)
            cpu = CPU_PER_OP
            if op is OpType.INSERT:
                kid = self.record_count + self._insert_count
                self._insert_count += 1
                generator.set_item_count(self.record_count + self._insert_count)
                service = self.store.put(encode_key(kid), self._value(kid))
                cpu += CPU_PER_BYTE * self.value_size
            else:
                if buf_pos >= len(key_buf):
                    j = i
                    while j < n_choices and choice_list[j] != insert_code:
                        j += 1
                    key_buf = generator.next_many(j - i)
                    buf_pos = 0
                kid = int(key_buf[buf_pos])
                buf_pos += 1
                key = encode_key(kid)
                if op is OpType.READ:
                    _, service = self.store.get(key)
                elif op is OpType.UPDATE:
                    service = self.store.put(key, self._value(kid))
                    cpu += CPU_PER_BYTE * self.value_size
                elif op is OpType.SCAN:
                    pairs, service = self.store.scan(key, spec.scan_length)
                    cpu += CPU_PER_BYTE * sum(len(v) for _, v in pairs)
                else:  # RMW
                    _, s1 = self.store.get(key)
                    s2 = self.store.put(key, self._value(kid))
                    service = s1 + s2
                    cpu += CPU_PER_BYTE * self.value_size
            service_samples[op].append(service + cpu)
            # Attribute the op's foreground service to the devices whose
            # busy time moved during it; background work triggered inside
            # the call inflates the deltas, so shares are normalized to the
            # foreground service.
            shares: dict[str, float] = {}
            total_delta = 0.0
            for k, d in enumerate(device_objs):
                delta = d.busy_seconds() - busy_before[k]
                if delta > 0:
                    shares[device_names[k]] = delta
                    total_delta += delta
            if trace is not None:
                # Busy time is monotonic, so the positive deltas summed into
                # total_delta are exactly how far the devices moved.
                trace.end(
                    "op", t=op_t0 + total_delta, op=op.value,
                    service_s=service + cpu,
                )
            if total_delta > 0 and service > 0:
                scale_f = min(1.0, service / total_delta)
                if scale_f < 1.0:
                    shares = {n: v * scale_f for n, v in shares.items()}
            else:
                shares = {}
            device_shares[op].append(shares)
            cpu_total += cpu
            fg_service_total += service
        return cpu_total, fg_service_total

    def _run_batched(
        self, spec, ops, choice_list, generator,
        device_names, device_objs, service_samples, device_shares,
    ) -> tuple[float, float]:
        """Slice the op stream into contiguous same-type runs and carry each
        through the store's batch API.

        Latency attribution moves to batch granularity: the store reports
        cumulative per-device busy seconds after every op (``busy_out``
        rows), and consecutive rows are differenced here — the same floats
        the per-op path reads via ``busy_seconds()`` snapshots, so shares,
        samples, and totals are bit-identical to :meth:`_run_per_op`.
        """
        store = self.store
        insert_code = ops.index(OpType.INSERT)
        n_choices = len(choice_list)
        n_devices = len(device_objs)
        value_cpu = CPU_PER_OP + CPU_PER_BYTE * self.value_size
        cpu_total = 0.0
        fg_service_total = 0.0
        key_buf: "np.ndarray | list[int]" = []
        buf_pos = 0
        row_prev = tuple(d.busy_seconds() for d in device_objs)
        i = 0
        while i < n_choices:
            op_idx = choice_list[i]
            op = ops[op_idx]
            if op is OpType.INSERT:
                kid = self.record_count + self._insert_count
                self._insert_count += 1
                generator.set_item_count(self.record_count + self._insert_count)
                service = store.put(encode_key(kid), self._value(kid))
                rows = [tuple(d.busy_seconds() for d in device_objs)]
                services = [service]
                cpus = None
                op_cpu = value_cpu
                count = 1
                j = i + 1
            else:
                j = i + 1
                while j < n_choices and choice_list[j] == op_idx:
                    j += 1
                count = j - i
                # Draw the slice's keys, replicating the per-op refill
                # points exactly: the buffer refills at the same op indexes
                # with the same draw sizes, so the RNG stream is identical.
                kids: list[int] = []
                while len(kids) < count:
                    if buf_pos >= len(key_buf):
                        k0 = i + len(kids)
                        jj = k0
                        while jj < n_choices and choice_list[jj] != insert_code:
                            jj += 1
                        key_buf = generator.next_many(jj - k0)
                        buf_pos = 0
                    take = min(count - len(kids), len(key_buf) - buf_pos)
                    kids.extend(
                        int(x) for x in key_buf[buf_pos : buf_pos + take]
                    )
                    buf_pos += take
                keys = encode_keys(kids)
                rows = []
                cpus = None
                if op is OpType.READ:
                    results = store.get_many(keys, busy_out=rows)
                    services = [s for _, s in results]
                    op_cpu = CPU_PER_OP
                elif op is OpType.UPDATE:
                    pool = self._value_pool
                    vs = self.value_size
                    m = len(pool) - vs
                    values = [
                        pool[s0 : s0 + vs] for s0 in [(k * 131) % m for k in kids]
                    ]
                    services = store.put_many(keys, values, busy_out=rows)
                    op_cpu = value_cpu
                elif op is OpType.SCAN:
                    services = []
                    cpus = []
                    for key in keys:
                        pairs, service = store.scan(key, spec.scan_length)
                        services.append(service)
                        cpus.append(
                            CPU_PER_OP
                            + CPU_PER_BYTE * sum(len(v) for _, v in pairs)
                        )
                        rows.append(tuple(d.busy_seconds() for d in device_objs))
                    op_cpu = 0.0
                else:  # RMW
                    services = []
                    for kid, key in zip(kids, keys):
                        _, s1 = store.get(key)
                        s2 = store.put(key, self._value(kid))
                        services.append(s1 + s2)
                        rows.append(tuple(d.busy_seconds() for d in device_objs))
                    op_cpu = value_cpu
            samples = service_samples[op]
            shares_list = device_shares[op]
            for idx in range(count):
                service = services[idx]
                row = rows[idx]
                shares: dict[str, float] = {}
                total_delta = 0.0
                for k in range(n_devices):
                    delta = row[k] - row_prev[k]
                    if delta > 0:
                        shares[device_names[k]] = delta
                        total_delta += delta
                row_prev = row
                if total_delta > 0 and service > 0:
                    scale_f = min(1.0, service / total_delta)
                    if scale_f < 1.0:
                        shares = {n: v * scale_f for n, v in shares.items()}
                else:
                    shares = {}
                cpu = cpus[idx] if cpus is not None else op_cpu
                samples.append(service + cpu)
                shares_list.append(shares)
                cpu_total += cpu
                fg_service_total += service
            i = j
        return cpu_total, fg_service_total

    def _run_columnar(
        self, spec, ops, choice_list, generator, device_objs,
    ) -> tuple[float, float, tuple]:
        """Batched dispatch with a fully columnar epilogue.

        The op stream is sliced into contiguous same-type runs exactly
        like :meth:`_run_batched` (same store calls, same RNG draws), but
        per-op attribution is deferred: the loop only collects flat,
        op-ordered columns — busy rows, service times, CPU costs — and
        :meth:`_latencies_columnar` turns them into shares, queueing
        penalties, and histograms with numpy array passes.  Every array
        operation reproduces the scalar path's float math bit-for-bit
        (elementwise IEEE ops are the same ops; sequential accumulation
        uses ``np.add.accumulate``, which is left-to-right like ``+=``),
        so results are byte-identical to the other modes.
        """
        store = self.store
        insert_code = ops.index(OpType.INSERT)
        n_choices = len(choice_list)
        value_cpu = CPU_PER_OP + CPU_PER_BYTE * self.value_size
        key_buf: "np.ndarray | list[int]" = []
        buf_pos = 0
        row0 = tuple(d.busy_seconds() for d in device_objs)
        rows: list[tuple] = []
        services_flat: list[float] = []
        cpus_flat: list[float] = []
        i = 0
        while i < n_choices:
            op_idx = choice_list[i]
            op = ops[op_idx]
            if op is OpType.INSERT:
                kid = self.record_count + self._insert_count
                self._insert_count += 1
                generator.set_item_count(self.record_count + self._insert_count)
                services_flat.append(store.put(encode_key(kid), self._value(kid)))
                rows.append(tuple(d.busy_seconds() for d in device_objs))
                cpus_flat.append(value_cpu)
                i += 1
                continue
            j = i + 1
            while j < n_choices and choice_list[j] == op_idx:
                j += 1
            count = j - i
            # Same refill points and draw sizes as the per-op path: the
            # RNG stream is identical (see _run_batched).
            kids: list[int] = []
            while len(kids) < count:
                if buf_pos >= len(key_buf):
                    k0 = i + len(kids)
                    jj = k0
                    while jj < n_choices and choice_list[jj] != insert_code:
                        jj += 1
                    key_buf = generator.next_many(jj - k0)
                    buf_pos = 0
                take = min(count - len(kids), len(key_buf) - buf_pos)
                kids.extend(int(x) for x in key_buf[buf_pos : buf_pos + take])
                buf_pos += take
            keys = encode_keys(kids)
            if op is OpType.READ:
                results = store.get_many(keys, busy_out=rows)
                services_flat.extend(s for _, s in results)
                cpus_flat.extend([CPU_PER_OP] * count)
            elif op is OpType.UPDATE:
                pool = self._value_pool
                vs = self.value_size
                m = len(pool) - vs
                values = [
                    pool[s0 : s0 + vs] for s0 in [(k * 131) % m for k in kids]
                ]
                services_flat.extend(store.put_many(keys, values, busy_out=rows))
                cpus_flat.extend([value_cpu] * count)
            elif op is OpType.SCAN:
                for key in keys:
                    pairs, service = store.scan(key, spec.scan_length)
                    services_flat.append(service)
                    cpus_flat.append(
                        CPU_PER_OP + CPU_PER_BYTE * sum(len(v) for _, v in pairs)
                    )
                    rows.append(tuple(d.busy_seconds() for d in device_objs))
            else:  # RMW
                for kid, key in zip(kids, keys):
                    _, s1 = store.get(key)
                    s2 = store.put(key, self._value(kid))
                    services_flat.append(s1 + s2)
                    cpus_flat.append(value_cpu)
                    rows.append(tuple(d.busy_seconds() for d in device_objs))
            i = j
        service_arr = np.asarray(services_flat, dtype=np.float64)
        cpu_arr = np.asarray(cpus_flat, dtype=np.float64)
        # Sequential left-to-right totals, bit-identical to scalar `+=`.
        cpu_total = float(np.add.accumulate(cpu_arr)[-1]) if len(cpu_arr) else 0.0
        fg_service_total = (
            float(np.add.accumulate(service_arr)[-1]) if len(service_arr) else 0.0
        )
        col_state = (np.asarray(choice_list), service_arr, cpu_arr, row0, rows)
        return cpu_total, fg_service_total, col_state

    def _latencies_columnar(
        self, ops, col_state, device_names, rho_by_device,
    ) -> Dict[str, LatencyHistogram]:
        """Vectorized twin of :meth:`_latencies` over the flat op columns.

        Shares, scaling, and queueing sums are elementwise array ops whose
        per-op float math is identical to the scalar path: deltas are the
        same subtractions, ``min(1.0, service/total)`` the same divide and
        compare, and the per-device share×factor sum accumulates in device
        order starting from zero, exactly like the scalar ``sum(...)``.
        """
        codes, service_arr, cpu_arr, row0, rows = col_state
        n = len(service_arr)
        out: Dict[str, LatencyHistogram] = {}
        if n == 0:
            return out
        rows_arr = np.empty((n + 1, len(row0)), dtype=np.float64)
        rows_arr[0] = row0
        rows_arr[1:] = rows
        deltas = rows_arr[1:] - rows_arr[:-1]
        shares = np.where(deltas > 0.0, deltas, 0.0)
        # Row-wise total of positive deltas, accumulated in device order
        # from 0.0 (scalar: ``total_delta = 0.0; total_delta += delta``).
        total = np.zeros(n, dtype=np.float64)
        for k in range(shares.shape[1]):
            total = total + shares[:, k]
        apply_mask = (total > 0.0) & (service_arr > 0.0)
        safe_total = np.where(apply_mask, total, 1.0)
        scale = np.minimum(1.0, service_arr / safe_total)
        # scalar: shares unscaled when scale == 1.0; ``x * 1.0 == x``
        # bitwise for finite x, so one multiply covers both branches.
        shares = np.where(apply_mask[:, None], shares * scale[:, None], 0.0)
        factor = {d: r / (1.0 - r) for d, r in rho_by_device.items()}
        queued = np.zeros(n, dtype=np.float64)
        for k, name in enumerate(device_names):
            queued = queued + shares[:, k] * factor.get(name, 0.0)
        samples = service_arr + cpu_arr
        for op_idx, op in enumerate(ops):
            mask = codes == op_idx
            m = int(mask.sum())
            if m == 0:
                continue
            arr = samples[mask]
            noise = self.rng.exponential(1.0, size=m)
            latencies = arr + queued[mask] * noise
            hist = LatencyHistogram(initial_capacity=max(16, m))
            hist.record_many(latencies)
            out[op.value] = hist
        return out

    # ------------------------------------------------------------- models

    def _elapsed(
        self,
        traffic: Dict[str, Dict[str, Dict[str, float]]],
        cpu_total: float,
        fg_service_total: float,
        queue_traffic=None,
        mq_devices=None,
    ) -> float:
        client_bound = (cpu_total + fg_service_total) / self.clients
        device_bound = 0.0
        bg_threads = max(1, self.background_threads)
        for name, lanes in traffic.items():
            transfer = sum(
                l["read_transfer_s"] + l["write_transfer_s"] for l in lanes.values()
            )
            if queue_traffic is not None and name in queue_traffic:
                # Multi-queue device: queues serve commands concurrently
                # while sharing the media channel, so transfer time still
                # serializes but per-command latency only serializes
                # *within* a queue — the device bound is the slowest
                # queue, not the sum of all lanes.  A queue hides at most
                # ``queue_depth`` commands' worth of latency no matter
                # how many threads submit to it.
                dev = mq_devices[name]
                fg_conc = max(1, min(self.clients, dev.queue_depth))
                bg_conc = max(1, min(bg_threads, dev.queue_depth))
                slowest_queue = 0.0
                for qlanes in queue_traffic[name]:
                    fg_lat = sum(
                        qlanes[k]["read_latency_s"] + qlanes[k]["write_latency_s"]
                        for k in ("foreground", "wal")
                    )
                    bg_lat = max(
                        qlanes[k]["read_latency_s"] + qlanes[k]["write_latency_s"]
                        for k in ("flush", "compaction", "migration", "gc", "scrub")
                        if k in qlanes
                    )
                    slowest_queue = max(
                        slowest_queue, fg_lat / fg_conc + bg_lat / bg_conc
                    )
                bound = transfer + slowest_queue
                device_bound = max(device_bound, bound)
                continue
            fg_lat = sum(
                lanes[k]["read_latency_s"] + lanes[k]["write_latency_s"]
                for k in ("foreground", "wal")
            )
            # Each background lane has its own thread pool (the paper runs
            # one migration thread and one compaction thread per partition),
            # so per-command latencies overlap within a lane but a single
            # lane cannot borrow the other lanes' threads.
            bg_lat = max(
                lanes[k]["read_latency_s"] + lanes[k]["write_latency_s"]
                for k in ("flush", "compaction", "migration", "gc", "scrub")
                if k in lanes
            )
            bound = transfer + fg_lat / self.clients + bg_lat / bg_threads
            device_bound = max(device_bound, bound)
        return max(client_bound, device_bound, 1e-9)

    def _latencies(
        self,
        samples: dict[OpType, list[float]],
        device_shares: dict[OpType, list[dict[str, float]]],
        rho_by_device: Dict[str, float],
    ) -> Dict[str, LatencyHistogram]:
        """Service times + sampled queueing delay → latency histograms.

        Each op's queueing penalty uses the utilization of the devices it
        actually touched: an NVMe-only put does not wait behind SATA
        compaction, but a read that dips into the capacity tier does.
        """
        factor = {n: r / (1.0 - r) for n, r in rho_by_device.items()}
        out: Dict[str, LatencyHistogram] = {}
        for op, values in samples.items():
            if not values:
                continue
            arr = np.asarray(values)
            queued_service = np.array(
                [
                    sum(share * factor.get(name, 0.0) for name, share in shares.items())
                    for shares in device_shares[op]
                ]
            )
            noise = self.rng.exponential(1.0, size=len(arr))
            latencies = arr + queued_service * noise
            hist = LatencyHistogram(initial_capacity=max(16, len(arr)))
            hist.record_many(latencies)
            out[op.value] = hist
        return out


def _busy_seconds(lanes: Dict[str, Dict[str, float]]) -> float:
    return sum(
        l["read_latency_s"]
        + l["read_transfer_s"]
        + l["write_latency_s"]
        + l["write_transfer_s"]
        for l in lanes.values()
    )


def _diff_snapshots(before, after):
    out = {}
    for device, lanes in after.items():
        out[device] = {}
        for lane, fields in lanes.items():
            # Idle-omitted lanes (scrub) may appear mid-run; an absent
            # "before" lane is all zeros, so the delta is the raw value.
            base = before.get(device, {}).get(lane)
            if base is None:
                out[device][lane] = dict(fields)
            else:
                out[device][lane] = {k: v - base[k] for k, v in fields.items()}
    return out

"""Raw page allocation on the NVMe device.

Zone slot files address pages directly (KVell-style in-place updates don't
fit an append-only file abstraction), so the performance tier uses this thin
page allocator instead of :class:`repro.simssd.fs.SimFilesystem`.  Page
payloads are real bytes; reads and writes charge the device per page.
"""

from __future__ import annotations

from typing import Optional

from repro.common.cache import LRUCache
from repro.common.errors import PowerLossError, ReproError
from repro.simssd.device import SimDevice
from repro.simssd.traffic import TrafficKind


class PageStore:
    """Allocate, read, and write individual device pages."""

    def __init__(
        self, device: SimDevice, cache: Optional[LRUCache] = None
    ) -> None:
        self.device = device
        #: The DRAM page cache fronting this store (when the owner wires
        #: one in).  ``free`` must know about it: releasing a page without
        #: dropping its cached copy leaves dead bytes charged against the
        #: cache budget forever (page ids are never reused).
        self.cache = cache
        #: Plain attribute (device geometry is fixed): consulted on every
        #: slot write's bounds check and page rounding.
        self.page_size = device.page_size
        self._pages: dict[int, bytearray] = {}
        self._next_id = 0

    @property
    def allocated_pages(self) -> int:
        return len(self._pages)

    def allocate(self, count: int = 1) -> list[int]:
        """Reserve ``count`` fresh pages; raises CapacityError when full."""
        self.device.allocate(count)
        ids = []
        for _ in range(count):
            pid = self._next_id
            self._next_id += 1
            self._pages[pid] = bytearray(self.page_size)
            ids.append(pid)
        return ids

    def free(self, page_id: int) -> None:
        """Release a page back to the device (double frees are rejected)."""
        if page_id not in self._pages:
            raise ReproError(f"double free or unknown page {page_id}")
        del self._pages[page_id]
        if self.cache is not None:
            self.cache.invalidate(page_id)
        self.device.trim(1)

    def write(
        self,
        page_id: int,
        offset: int,
        data: bytes,
        kind: TrafficKind,
        cache: Optional[LRUCache] = None,
        npages: int = 1,
    ) -> float:
        """Write ``data`` into a slot (an in-place update of ``npages``
        random pages).  Invalidates any cached copy.

        Oversized slots span continuation pages; their payload is stored in
        the head page's buffer and the I/O is charged for all ``npages``.

        Under fault injection the same torn-write / corruption semantics as
        :class:`repro.simssd.fs.SimFile` apply: a crashing write persists
        only a prefix, a transient failure beyond retries persists nothing,
        and a successful write may land with one flipped bit.
        """
        page = self._pages.get(page_id)
        if page is None:
            raise ReproError(f"write to unallocated page {page_id}")
        if offset < 0 or offset + len(data) > self.page_size * npages:
            raise ReproError(
                f"write [{offset}, {offset + len(data)}) exceeds "
                f"{npages} page(s)"
            )

        inj = self.device.injector
        if inj is None:
            # No injector: the charge cannot crash, fail, or corrupt, so
            # skip the closure and exception plumbing on the hot path.
            service = self.device.write_pages(npages, kind, sequential=False)
            end = offset + len(data)
            if end > len(page):
                page.extend(b"\x00" * (end - len(page)))
            page[offset:end] = data
            if cache is not None:
                cache.invalidate(page_id)
            return service

        def apply(payload: bytes) -> None:
            end = offset + len(payload)
            if end > len(page):
                page.extend(b"\x00" * (end - len(page)))
            page[offset:end] = payload

        try:
            service = self.device.write_pages(npages, kind, sequential=False)
        except PowerLossError as e:
            keep = inj.torn_prefix_len(len(data), e.torn_fraction)
            apply(data[:keep])
            if cache is not None:
                cache.invalidate(page_id)
            raise
        apply(inj.corrupt_payload(data) if inj is not None else data)
        if cache is not None:
            cache.invalidate(page_id)
        return service

    def write_nocharge(
        self, page_id: int, offset: int, data: bytes, cache=None, npages: int = 1
    ) -> None:
        """Splice slot bytes and drop the cached copy WITHOUT charging.

        For batch writers (zone-split resettling) that defer their device
        charges into one grouped :meth:`SimDevice.write_pages_batch` call.
        Only legal while the device is on its unguarded fastpath — with no
        injector a write cannot crash, fail, or corrupt, so splicing before
        the (deferred) charge is unobservable.
        """
        page = self._pages.get(page_id)
        if page is None:
            raise ReproError(f"write to unallocated page {page_id}")
        if offset < 0 or offset + len(data) > self.page_size * npages:
            raise ReproError(
                f"write [{offset}, {offset + len(data)}) exceeds "
                f"{npages} page(s)"
            )
        end = offset + len(data)
        if end > len(page):
            page.extend(b"\x00" * (end - len(page)))
        page[offset:end] = data
        if cache is not None:
            cache.invalidate(page_id)

    def read(
        self,
        page_id: int,
        kind: TrafficKind,
        cache: Optional[LRUCache] = None,
        npages: int = 1,
    ) -> tuple[bytes, float]:
        """Read a slot's page(s), optionally through the DRAM page cache."""
        page = self._pages.get(page_id)
        if page is None:
            raise ReproError(f"read of unallocated page {page_id}")
        # Page ids key the shared cache directly: every other tenant of the
        # shared LRU uses tuple keys, so bare ints cannot collide with them.
        if cache is not None:
            cached = cache.get(page_id)
            if cached is not None:
                return cached, 0.0
        service = self.device.read_pages(npages, kind, sequential=False)
        data = bytes(page)
        if cache is not None:
            cache.put(page_id, data, charge=npages * self.page_size)
        return data, service

    def peek(self, page_id: int, offset: int, length: int) -> bytes:
        """Zero-cost access to page contents whose I/O was already paid
        (e.g. after a bulk migration read)."""
        page = self._pages.get(page_id)
        if page is None:
            raise ReproError(f"peek of unallocated page {page_id}")
        return bytes(page[offset : offset + length])

    def read_many(
        self, page_ids: list[int], kind: TrafficKind
    ) -> tuple[list[bytes], float]:
        """Bulk read for migration: one I/O per page (zone pages are
        discontiguous on media), bypassing the cache."""
        service = 0.0
        out = []
        for pid in page_ids:
            page = self._pages.get(pid)
            if page is None:
                raise ReproError(f"read of unallocated page {pid}")
            out.append(bytes(page))
        if page_ids:
            service = self.device.read_pages(len(page_ids), kind, sequential=False)
        return out, service

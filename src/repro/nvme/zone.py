"""Zones: contiguous-key-range object containers on NVMe (paper §3.2).

A zone stores objects whose keys fall inside its range, packed into
size-class slots within pages.  Zones are the unit of migration: demoting a
zone reads its pages (few, thanks to the size-class packing) and yields a
batch with a tight key range for the capacity tier's L1 merge.

The hot zone is a zone with ``key_range=None`` — no range restriction —
holding objects the tracker currently classifies as hot.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import CorruptionError, ReproError
from repro.common.keys import KeyRange
from repro.common.records import Record
from repro.lsm.blocks import decode_one, encode_record
from repro.nvme.pagestore import PageStore
from repro.simssd.traffic import TrafficKind


@dataclass(slots=True)
class SlotLocation:
    """Where one object lives: a slot of a page owned by a zone.

    ``crc`` is the CRC32 of the slot's encoded record, kept in the
    in-memory index (the paper's index blocks) — zone slots have no
    per-record checksum on media, so this is what lets readers and the
    scrubber detect latent corruption in slot payloads.  ``None`` means
    unknown (e.g. right after checkpoint recovery, until a scrub pass
    re-derives it); verification is skipped then.
    """

    zone_id: int
    page_id: int
    slot_index: int
    slot_size: int
    record_size: int
    seqno: int
    promoted: bool = False
    crc: Optional[int] = None

    @property
    def offset(self) -> int:
        return self.slot_index * self.slot_size


# eq=False: pages are unique objects and the allocator does list-membership
# checks on every slot free; field-wise comparison of slot lists is wasted.
@dataclass(slots=True, eq=False)
class _ZonePage:
    page_id: int
    slot_size: int
    num_slots: int
    free_slots: list[int] = field(default_factory=list)
    used: int = 0
    #: Continuation pages of an oversized (multi-page) slot.
    extra_pages: list[int] = field(default_factory=list)

    @property
    def total_pages(self) -> int:
        return 1 + len(self.extra_pages)


class Zone:
    """One key-range container of slotted pages."""

    def __init__(
        self,
        zone_id: int,
        key_range: Optional[KeyRange],
        page_store: PageStore,
    ) -> None:
        self.zone_id = zone_id
        self.key_range = key_range
        self.page_store = page_store
        self._pages: dict[int, _ZonePage] = {}
        self._open: dict[int, list[_ZonePage]] = {}  # slot_size -> pages w/ space
        #: Incremental page count (with oversized-slot continuations); the
        #: watermark checks read it on every put, so it must stay O(1).
        self._total_pages = 0
        #: Insertion-ordered key set (dict-as-ordered-set): hot-zone eviction
        #: scans it FIFO with bounded work per call.
        self.keys: dict[bytes, None] = {}
        self.used_bytes = 0
        self.read_ios = 0  # foreground reads since last migration (cost/benefit)
        #: Shared one-element page counter (the owning partition's running
        #: ``used_pages`` total).  When set, every page this zone gains or
        #: loses is mirrored into it, keeping the partition's watermark
        #: check O(1) instead of O(zones).
        self.page_counter: Optional[list[int]] = None

    # ----------------------------------------------------------- geometry

    @property
    def is_hot_zone(self) -> bool:
        return self.key_range is None

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    @property
    def object_count(self) -> int:
        return len(self.keys)

    def accepts(self, key: bytes) -> bool:
        return self.key_range is None or self.key_range.contains(key)

    def page_ids(self) -> list[int]:
        return list(self._pages)

    def total_pages(self) -> int:
        """Pages this zone occupies, counting oversized-slot continuations."""
        return self._total_pages

    # ----------------------------------------------------------- allocate

    def _slots_per_page(self, slot_size: int) -> int:
        return max(1, self.page_store.page_size // slot_size)

    def allocate_slot(self, slot_size: int) -> tuple[int, int]:
        """Reserve a slot; allocates a fresh page when none is open.

        Returns ``(page_id, slot_index)``.
        """
        open_pages = self._open.setdefault(slot_size, [])
        while open_pages:
            zp = open_pages[-1]
            if zp.free_slots:
                slot = zp.free_slots.pop()
                zp.used += 1
                if not zp.free_slots:
                    open_pages.pop()
                return zp.page_id, slot
            open_pages.pop()
        pages_needed = -(-slot_size // self.page_store.page_size)
        (pid, *extra) = self.page_store.allocate(pages_needed)
        nslots = self._slots_per_page(slot_size)
        zp = _ZonePage(
            page_id=pid,
            slot_size=slot_size,
            num_slots=nslots,
            free_slots=list(range(nslots - 1, 0, -1)),
            extra_pages=extra,
        )
        zp.used = 1
        self._pages[pid] = zp
        self._total_pages += zp.total_pages
        c = self.page_counter
        if c is not None:
            c[0] += zp.total_pages
        if zp.free_slots:
            self._open.setdefault(slot_size, []).append(zp)
        return pid, 0

    def free_slot(self, loc: SlotLocation) -> None:
        zp = self._pages.get(loc.page_id)
        if zp is None:
            raise ReproError(f"slot free on page {loc.page_id} not in zone {self.zone_id}")
        zp.used -= 1
        if zp.used <= 0:
            self._release_page(zp)
        else:
            zp.free_slots.append(loc.slot_index)
            open_pages = self._open.setdefault(loc.slot_size, [])
            if zp not in open_pages:
                open_pages.append(zp)

    def _release_page(self, zp: _ZonePage) -> None:
        del self._pages[zp.page_id]
        self._total_pages -= zp.total_pages
        c = self.page_counter
        if c is not None:
            c[0] -= zp.total_pages
        open_pages = self._open.get(zp.slot_size)
        if open_pages and zp in open_pages:
            open_pages.remove(zp)
        self.page_store.free(zp.page_id)
        for extra in zp.extra_pages:
            self.page_store.free(extra)

    # ---------------------------------------------------------------- I/O

    def write_record(
        self,
        rec: Record,
        slot_size: int,
        kind: TrafficKind = TrafficKind.FOREGROUND,
        cache=None,
        promoted: bool = False,
    ) -> tuple[SlotLocation, float]:
        """Place ``rec`` into a fresh ``slot_size`` slot and write the page."""
        kr = self.key_range  # inlined ``accepts`` (one call per store write)
        if kr is not None and not kr.contains(rec.key):
            raise ReproError(f"key {rec.key!r} outside zone {self.zone_id} range")
        payload = encode_record(rec)
        if len(payload) > slot_size:
            raise ReproError(
                f"record of {len(payload)}B does not fit slot class {slot_size}"
            )
        page_id, slot_index = self.allocate_slot(slot_size)
        loc = SlotLocation(
            self.zone_id, page_id, slot_index, slot_size,
            len(payload), rec.seqno, promoted, crc=zlib.crc32(payload),
        )
        npages = -(-slot_size // self.page_store.page_size)
        service = self.page_store.write(
            page_id, slot_index * slot_size, payload, kind, cache, npages=npages
        )
        self.keys[rec.key] = None
        self.used_bytes += len(payload)
        return loc, service

    def write_record_deferred(
        self,
        rec: Record,
        slot_size: int,
        cache=None,
        promoted: bool = False,
    ) -> tuple[SlotLocation, int]:
        """:meth:`write_record` minus the device charge.

        Returns ``(location, npages_to_charge)`` so a batch resettler can
        pay for the whole run of slot writes with one grouped
        :meth:`repro.simssd.device.SimDevice.write_pages_batch` call.
        Fastpath-only (see :meth:`PageStore.write_nocharge`).
        """
        kr = self.key_range
        if kr is not None and not kr.contains(rec.key):
            raise ReproError(f"key {rec.key!r} outside zone {self.zone_id} range")
        payload = encode_record(rec)
        if len(payload) > slot_size:
            raise ReproError(
                f"record of {len(payload)}B does not fit slot class {slot_size}"
            )
        page_id, slot_index = self.allocate_slot(slot_size)
        loc = SlotLocation(
            self.zone_id, page_id, slot_index, slot_size,
            len(payload), rec.seqno, promoted, crc=zlib.crc32(payload),
        )
        npages = -(-slot_size // self.page_store.page_size)
        self.page_store.write_nocharge(
            page_id, slot_index * slot_size, payload, cache, npages=npages
        )
        self.keys[rec.key] = None
        self.used_bytes += len(payload)
        return loc, npages

    def update_in_place(
        self,
        loc: SlotLocation,
        rec: Record,
        kind: TrafficKind = TrafficKind.FOREGROUND,
        cache=None,
    ) -> tuple[SlotLocation, float]:
        """Overwrite an object inside its existing slot (§3.2: small objects
        update in place)."""
        payload = encode_record(rec)
        if len(payload) > loc.slot_size:
            raise ReproError("in-place update does not fit the slot")
        npages = -(-loc.slot_size // self.page_store.page_size)
        service = self.page_store.write(
            loc.page_id, loc.offset, payload, kind, cache, npages=npages
        )
        self.used_bytes += len(payload) - loc.record_size
        new_loc = SlotLocation(
            loc.zone_id, loc.page_id, loc.slot_index, loc.slot_size,
            len(payload), rec.seqno, loc.promoted, crc=zlib.crc32(payload),
        )
        return new_loc, service

    def update_in_place_deferred(
        self,
        loc: SlotLocation,
        rec: Record,
        cache=None,
    ) -> tuple[SlotLocation, int]:
        """:meth:`update_in_place` minus the device charge.

        Returns ``(location, npages_to_charge)``; the caller pays for a
        run of in-place updates with one grouped
        :meth:`repro.simssd.device.SimDevice.write_pages_batch` call.
        Fastpath-only (see :meth:`PageStore.write_nocharge`).
        """
        payload = encode_record(rec)
        if len(payload) > loc.slot_size:
            raise ReproError("in-place update does not fit the slot")
        npages = -(-loc.slot_size // self.page_store.page_size)
        self.page_store.write_nocharge(
            loc.page_id, loc.offset, payload, cache, npages=npages
        )
        self.used_bytes += len(payload) - loc.record_size
        new_loc = SlotLocation(
            loc.zone_id, loc.page_id, loc.slot_index, loc.slot_size,
            len(payload), rec.seqno, loc.promoted, crc=zlib.crc32(payload),
        )
        return new_loc, npages

    def read_object(
        self,
        loc: SlotLocation,
        kind: TrafficKind = TrafficKind.FOREGROUND,
        cache=None,
    ) -> tuple[Record, float]:
        """Read one object's page and decode the record in its slot.

        When the index carries a slot checksum it is verified against the
        bytes read, so latent media corruption surfaces as
        :class:`CorruptionError` instead of a silently wrong record.
        """
        npages = -(-loc.slot_size // self.page_store.page_size)
        data, service = self.page_store.read(loc.page_id, kind, cache, npages=npages)
        if loc.crc is not None:
            actual = zlib.crc32(data[loc.offset : loc.offset + loc.record_size])
            if actual != loc.crc:
                raise CorruptionError(
                    f"zone {self.zone_id} slot checksum mismatch on page "
                    f"{loc.page_id} slot {loc.slot_index}: "
                    f"stored={loc.crc:#x} computed={actual:#x}"
                )
        rec = decode_one(data, loc.offset)
        self.read_ios += 1
        return rec, service

    def remove_object(self, key: bytes, loc: SlotLocation) -> None:
        """Drop an object (after migration or relocation)."""
        self.keys.pop(key, None)
        self.used_bytes -= loc.record_size
        self.free_slot(loc)

    def write_tombstone(
        self, loc: SlotLocation, kind: TrafficKind = TrafficKind.FOREGROUND, cache=None
    ) -> float:
        """Mark the original slot of a relocated/resized object (§3.2)."""
        marker = encode_record(Record.tombstone(b"", loc.seqno))[: loc.slot_size]
        return self.page_store.write(loc.page_id, loc.offset, marker, kind, cache)

    # ------------------------------------------------------------ metrics

    def demotion_score(self) -> float:
        """Cost-benefit metric (§3.5): freed bytes per read I/O.

        Cost is the page reads needed to collect the zone; zones that served
        many recent foreground reads are penalized (they are likely to be
        read again, and their counter resets only at migration).
        """
        if not self._pages:
            return 0.0
        cost = self.total_pages() + self.read_ios
        return self.used_bytes / cost

    def reset_read_counter(self) -> None:
        self.read_ios = 0

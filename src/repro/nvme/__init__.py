"""The NVMe performance tier (paper §3.2, §3.6).

A shared-nothing, zone-based object store inspired by KVell:

* the key space is range-partitioned across independent **partitions**;
* each partition divides its range into **zones** — contiguous key spans
  sized to the migration batch, so demoting a zone reads few pages and
  produces a tight key range for the capacity tier's L1 merge;
* inside a zone, objects live in size-class **slots** packed into 4 KiB
  pages; small objects update in place;
* a per-partition **hot zone** (no key-range restriction) parks objects the
  tracker currently classifies as hot, exempting them from migration.
"""

from repro.nvme.config import NVMeConfig
from repro.nvme.pagestore import PageStore
from repro.nvme.zone import Zone, SlotLocation
from repro.nvme.partition import Partition
from repro.nvme.tier import PerformanceTier
from repro.nvme.checkpoint import PartitionCheckpoint

__all__ = [
    "NVMeConfig",
    "PageStore",
    "Zone",
    "SlotLocation",
    "Partition",
    "PerformanceTier",
    "PartitionCheckpoint",
]

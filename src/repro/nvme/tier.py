"""The performance tier: partitions assembled over one NVMe device."""

from __future__ import annotations

from bisect import bisect_right
from typing import Optional

from repro.common.errors import ConfigError, ReproError
from repro.common.keys import KeyRange, decode_key, encode_key
from repro.common.records import Record
from repro.nvme.config import NVMeConfig
from repro.nvme.pagestore import PageStore
from repro.nvme.partition import Partition
from repro.simssd.device import SimDevice
from repro.simssd.traffic import TrafficKind


class PerformanceTier:
    """Range-partitioned, zone-based NVMe object store."""

    def __init__(
        self,
        device: SimDevice,
        key_space: KeyRange,
        config: Optional[NVMeConfig] = None,
        cache=None,
    ) -> None:
        if key_space.hi is None:
            raise ConfigError("key space must be bounded")
        self.device = device
        self.key_space = key_space
        self.config = config or NVMeConfig()
        self.cache = cache
        self.page_store = PageStore(device, cache=cache)

        n = self.config.num_partitions
        # A small device-level reserve absorbs transient allocations
        # (zone resettles, hot-zone spill) without hitting raw capacity.
        budget = int(device.profile.num_pages * 0.99) // n
        lo = decode_key(key_space.lo)
        hi = decode_key(key_space.hi)
        step = (hi - lo) / n
        self.partitions: list[Partition] = []
        self._bounds: list[bytes] = []
        for i in range(n):
            plo = key_space.lo if i == 0 else encode_key(lo + int(i * step))
            phi = encode_key(lo + int((i + 1) * step)) if i + 1 < n else key_space.hi
            part = Partition(
                partition_id=i,
                key_range=KeyRange(plo, phi),
                page_store=self.page_store,
                config=self.config,
                page_budget=budget,
                cache=cache,
            )
            self.partitions.append(part)
            self._bounds.append(plo)

    # ------------------------------------------------------------ routing

    def partition_for_key(self, key: bytes) -> Partition:
        """Route a key to its range partition (raises outside the key space)."""
        if not self.key_space.contains(key):
            raise ReproError(f"key {key!r} outside key space")
        idx = bisect_right(self._bounds, key) - 1
        return self.partitions[idx]

    # ----------------------------------------------------------------- ops

    def put(self, rec: Record, kind: TrafficKind = TrafficKind.FOREGROUND) -> float:
        return self.partition_for_key(rec.key).put(rec, kind)

    def get(
        self, key: bytes, kind: TrafficKind = TrafficKind.FOREGROUND
    ) -> tuple[Optional[Record], float]:
        return self.partition_for_key(key).get(key, kind)

    def delete(self, key: bytes, kind: TrafficKind = TrafficKind.FOREGROUND) -> float:
        return self.partition_for_key(key).delete(key, kind)

    def contains(self, key: bytes) -> bool:
        return self.partition_for_key(key).contains(key)

    # ------------------------------------------------------------ metrics

    def object_count(self) -> int:
        return sum(p.object_count() for p in self.partitions)

    def used_bytes(self) -> int:
        return sum(p.used_bytes() for p in self.partitions)

    def used_pages(self) -> int:
        return sum(p.used_pages for p in self.partitions)

    def fill_fraction(self) -> float:
        total_budget = sum(p.page_budget for p in self.partitions)
        return self.used_pages() / total_budget if total_budget else 1.0

    def partitions_over_watermark(self) -> list[Partition]:
        return [p for p in self.partitions if p.over_high_watermark()]

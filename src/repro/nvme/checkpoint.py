"""Index checkpointing for the NVMe tier (paper §3.1).

The partition's B-tree index is an in-memory structure; the paper keeps "a
backup of the index and metadata" on NVMe so a restart doesn't need to scan
the data pages.  A checkpoint serializes every index entry — key, slot
location, sizes, seqno, promotion flag — plus the zone table into dedicated
NVMe pages (charged like any other write).  Recovery reads those pages back
and reconstructs the index, the zones, and their slot-occupancy maps.

Durability semantics: a checkpoint captures the partition at one instant;
writes after the last checkpoint are not recovered (the engine checkpoints
at shutdown via :meth:`repro.core.hyperdb.HyperDB.finalize`; a production
system would pair this with the data pages' self-describing headers, which
the simulation omits).

Integrity: the serialized image ends in a CRC32 trailer.  :meth:`recover`
verifies it before trusting a single field, so a bit-flipped or torn
checkpoint surfaces as :class:`CorruptionError` — which the engine turns
into a degraded (empty) rebuild — instead of a silently wrong index.
Crash safety: :meth:`write` builds the new checkpoint in freshly allocated
pages and frees the previous one only after the new image is fully
written, so a crash mid-checkpoint always leaves the old intact image.
"""

from __future__ import annotations

import struct
import zlib
from typing import TYPE_CHECKING

from repro.common.errors import CorruptionError, RecoveryError
from repro.common.keys import KeyRange
from repro.nvme.zone import SlotLocation, Zone, _ZonePage
from repro.simssd.traffic import TrafficKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.nvme.partition import Partition

_MAGIC = 0xC4EC
_HEADER = struct.Struct(">HHII")          # magic, zone_count, entry_count, reserved
_ZONE_REC = struct.Struct(">QB")          # zone_id, has_range flag (+ lo/hi keys)
_ENTRY = struct.Struct(">HQQIIIQB")       # klen, zone_id, page_id, slot, slot_sz, rec_sz, seqno, flags
_CRC = struct.Struct(">I")                # crc32 trailer over everything above


def _encode_key_field(key: bytes) -> bytes:
    return struct.pack(">H", len(key)) + key


class PartitionCheckpoint:
    """Serialize / restore one partition's index and zone table."""

    @staticmethod
    def serialize(partition: "Partition") -> bytes:
        zones = [partition.hot_zone] + partition.zones()
        entries = list(partition.index.items())
        out = [_HEADER.pack(_MAGIC, len(zones), len(entries), 0)]
        for zone in zones:
            has_range = 0 if zone.key_range is None else 1
            out.append(_ZONE_REC.pack(zone.zone_id, has_range))
            if has_range:
                out.append(_encode_key_field(zone.key_range.lo))
                out.append(_encode_key_field(zone.key_range.hi or b""))
        for key, loc in entries:
            out.append(
                _ENTRY.pack(
                    len(key),
                    loc.zone_id,
                    loc.page_id,
                    loc.slot_index,
                    loc.slot_size,
                    loc.record_size,
                    loc.seqno,
                    1 if loc.promoted else 0,
                )
            )
            out.append(key)
        payload = b"".join(out)
        return payload + _CRC.pack(zlib.crc32(payload))

    @staticmethod
    def write(
        partition: "Partition", kind: TrafficKind = TrafficKind.GC
    ) -> float:
        """Persist a checkpoint into NVMe pages; returns the service time.

        Crash-safe ordering: the new image is written into *fresh* pages
        first; only once it is complete are the previous checkpoint's pages
        released and the new ones registered.  A power loss mid-write thus
        leaves the old checkpoint intact and recoverable.
        """
        payload = PartitionCheckpoint.serialize(partition)
        store = partition.page_store
        npages = max(1, -(-len(payload) // store.page_size))
        pages = store.allocate(npages)
        service = 0.0
        for i, pid in enumerate(pages):
            chunk = payload[i * store.page_size : (i + 1) * store.page_size]
            service += store.write(pid, 0, chunk, kind)
        # The new image is durable; retire the old one and switch over.
        for pid in partition._checkpoint_pages:
            store.free(pid)
        partition._checkpoint_pages = pages
        partition._checkpoint_len = len(payload)
        return service

    @staticmethod
    def recover(partition: "Partition") -> float:
        """Rebuild the partition's in-memory state from its checkpoint.

        Reads the checkpoint pages (charged), then reconstructs the B-tree
        index, the zone table, and every zone's page/slot occupancy.
        Returns the service time.
        """
        if not partition._checkpoint_pages:
            raise RecoveryError(
                f"partition {partition.partition_id} has no checkpoint"
            )
        store = partition.page_store
        service = 0.0
        chunks = []
        for pid in partition._checkpoint_pages:
            data, s = store.read(pid, TrafficKind.FOREGROUND)
            service += s
            chunks.append(data)
        image = b"".join(chunks)[: partition._checkpoint_len]
        if len(image) < _HEADER.size + _CRC.size:
            raise CorruptionError("checkpoint shorter than header + CRC")
        payload, footer = image[: -_CRC.size], image[-_CRC.size :]
        (expected,) = _CRC.unpack(footer)
        actual = zlib.crc32(payload)
        if actual != expected:
            raise CorruptionError(
                f"checkpoint CRC mismatch: stored={expected:#x} computed={actual:#x}"
            )

        magic, zone_count, entry_count, _ = _HEADER.unpack_from(payload, 0)
        if magic != _MAGIC:
            raise CorruptionError("bad checkpoint magic")
        pos = _HEADER.size

        # --- zone table -------------------------------------------------
        zones: dict[int, Zone] = {}
        ordered_regular: list[Zone] = []
        hot_zone: Zone | None = None
        for _ in range(zone_count):
            zone_id, has_range = _ZONE_REC.unpack_from(payload, pos)
            pos += _ZONE_REC.size
            key_range = None
            if has_range:
                (klen,) = struct.unpack_from(">H", payload, pos)
                pos += 2
                lo = payload[pos : pos + klen]
                pos += klen
                (klen,) = struct.unpack_from(">H", payload, pos)
                pos += 2
                hi = payload[pos : pos + klen] or None
                pos += klen
                key_range = KeyRange(lo, hi)
            zone = Zone(zone_id, key_range, store)
            zones[zone_id] = zone
            if key_range is None:
                hot_zone = zone
            else:
                ordered_regular.append(zone)
        if hot_zone is None:
            raise CorruptionError("checkpoint lacks a hot zone")

        # --- index entries ------------------------------------------------
        partition.index = type(partition.index)(order=64)
        pages_seen: dict[tuple[int, int], _ZonePage] = {}
        for _ in range(entry_count):
            klen, zone_id, page_id, slot, slot_sz, rec_sz, seqno, flags = (
                _ENTRY.unpack_from(payload, pos)
            )
            pos += _ENTRY.size
            key = payload[pos : pos + klen]
            pos += klen
            zone = zones.get(zone_id)
            if zone is None:
                raise CorruptionError(f"entry references unknown zone {zone_id}")
            loc = SlotLocation(
                zone_id=zone_id,
                page_id=page_id,
                slot_index=slot,
                slot_size=slot_sz,
                record_size=rec_sz,
                seqno=seqno,
                promoted=bool(flags & 1),
            )
            partition.index.insert(key, loc)
            zone.keys[key] = None
            zone.used_bytes += rec_sz
            zp = pages_seen.get((zone_id, page_id))
            if zp is None:
                nslots = max(1, store.page_size // slot_sz)
                zp = _ZonePage(
                    page_id=page_id,
                    slot_size=slot_sz,
                    num_slots=nslots,
                    free_slots=list(range(nslots)),
                )
                pages_seen[(zone_id, page_id)] = zp
                zone._pages[page_id] = zp
                zone._total_pages += zp.total_pages
            if slot in zp.free_slots:
                zp.free_slots.remove(slot)
            zp.used += 1

        # Re-open pages with spare slots for future allocation.
        for (zone_id, _pid), zp in pages_seen.items():
            if zp.free_slots:
                zones[zone_id]._open.setdefault(zp.slot_size, []).append(zp)

        ordered_regular.sort(key=lambda z: z.key_range.lo)
        partition._zones = ordered_regular
        partition._zone_bounds = [z.key_range.lo for z in ordered_regular]
        partition.hot_zone = hot_zone
        partition._zone_map = dict(zones)
        # The zones above were rebuilt behind the partition's incremental
        # page counter (direct Zone construction + _total_pages surgery),
        # so re-attach it and re-sync from the rebuilt totals.
        box = partition._used_pages_box
        for zone in zones.values():
            zone.page_counter = box
        box[0] = hot_zone.total_pages() + sum(
            z.total_pages() for z in ordered_regular
        )
        return service

"""Configuration of the NVMe performance tier."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError

KiB = 1024


@dataclass
class NVMeConfig:
    """Tuning of partitions, zones, slots, and migration thresholds.

    Defaults follow the paper's implementation notes (§3.6): 8 partitions
    per device, zone capacity equal to the migration batch (and to the
    semi-SSTable file size), watermark-driven demotion, and a cascading
    discriminator of four windows with a three-window hot threshold.
    """

    num_partitions: int = 8
    migration_batch_bytes: int = 64 * KiB
    high_watermark: float = 0.90
    low_watermark: float = 0.80
    hot_zone_fraction: float = 0.10
    slot_classes: tuple[int, ...] = (
        64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048, 3072, 4096,
    )
    initial_zones_per_partition: int = 4
    zone_split_factor: float = 2.0   # split when a zone exceeds this x batch
    tracker_max_filters: int = 4
    #: The paper uses "present in >= 3 of 4 filters" with each filter's
    #: window spanning the full NVMe object capacity.  Our filters each
    #: span capacity/max_filters (so the chain covers the same horizon),
    #: and the equivalent sustained-interval condition is 2 consecutive
    #: quarter-capacity windows.
    tracker_hot_threshold: int = 2
    tracker_bits_per_key: int = 10
    object_cache_entries: int = 256

    def __post_init__(self) -> None:
        if self.num_partitions < 1:
            raise ConfigError("need at least one partition")
        if not 0.0 < self.low_watermark < self.high_watermark <= 1.0:
            raise ConfigError(
                "watermarks must satisfy 0 < low < high <= 1, got "
                f"low={self.low_watermark} high={self.high_watermark}"
            )
        if self.migration_batch_bytes <= 0:
            raise ConfigError("migration batch must be positive")
        if tuple(sorted(self.slot_classes)) != tuple(self.slot_classes):
            raise ConfigError("slot classes must be ascending")
        if not self.slot_classes:
            raise ConfigError("at least one slot class required")
        if self.zone_split_factor <= 1.0:
            raise ConfigError("zone_split_factor must exceed 1.0")

    def slot_class_for(self, size: int) -> int:
        """Smallest slot class that fits ``size`` bytes.

        Objects larger than the largest class get a dedicated multi-page
        slot rounded up to whole pages by the zone.
        """
        for cls in self.slot_classes:
            if size <= cls:
                return cls
        return size  # oversized: dedicated slot, page-rounded by the zone

"""A shared-nothing partition of the NVMe tier (paper §3.1, §3.6).

Each partition owns a contiguous slice of the key space, its own B-tree
index, its own zones (plus one hot zone), its own hotness tracker, and a
page budget (its share of the device).  Partitions never touch each other's
state, so the design scales without lock contention — here that translates
to per-partition accounting the harness can parallelize conceptually.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from typing import Callable, Optional

from repro import obs
from repro.common.btree import BTreeIndex
from repro.common.errors import CorruptionError, ReproError
from repro.common.keys import KeyRange
from repro.common.records import Record
from repro.hotness.tracker import HotnessTracker
from repro.lsm.blocks import decode_one
from repro.nvme.config import NVMeConfig
from repro.nvme.pagestore import PageStore
from repro.nvme.zone import SlotLocation, Zone
from repro.simssd.traffic import TrafficKind


class Partition:
    """One independent slice of the performance tier."""

    def __init__(
        self,
        partition_id: int,
        key_range: KeyRange,
        page_store: PageStore,
        config: NVMeConfig,
        page_budget: int,
        cache=None,
    ) -> None:
        if key_range.hi is None:
            raise ReproError("partition ranges must be bounded")
        self.partition_id = partition_id
        self.key_range = key_range
        self.page_store = page_store
        self.config = config
        self.page_budget = page_budget
        self.cache = cache
        self.index = BTreeIndex(order=64)
        self._zone_seq = 0

        # Capacity-derived tracker window (§3.3): the number of objects this
        # partition can hold.  Starts from the smallest slot class and is
        # re-derived from the measured average object size (Eq. 1) once
        # enough writes have been observed.
        self.tracker = self._make_tracker(max(64, config.slot_classes[0]))
        self._tracker_calibrated = False
        #: Bound fast path to the discriminator's access recorder — touched
        #: once per client op, where the two delegation frames
        #: (``tracker.record_access`` -> ``discriminator.access``) are
        #: measurable.  Refreshed everywhere ``self.tracker`` is replaced.
        self._record_access = self.tracker.discriminator.access

        #: Running page total over all zones (hot zone included), shared
        #: with every zone via ``Zone.page_counter``.  Keeps ``used_pages``
        #: — consulted by the watermark check on every put — O(1) instead
        #: of O(zones).
        self._used_pages_box: list[int] = [0]

        #: Ordered regular zones: ``_zone_bounds[i]`` is the lower bound of
        #: ``_zones[i]``; ranges tile the partition's key range.
        self._zones: list[Zone] = []
        self._zone_bounds: list[bytes] = []
        #: Every live zone (hot zone included) by id — ``_zone_by_id`` runs
        #: on each read and in-place update, so it must not scan the list.
        self._zone_map: dict[int, Zone] = {}
        self._init_zones()
        self.hot_zone = self._new_zone(None)

        # Eq. 1 inputs: running totals of slot-file bytes and object counts.
        self._written_bytes = 0
        self._written_objects = 0
        self.allocated_pages = 0  # pages owned by this partition's zones

        # Index-backup checkpoint state (§3.1); see nvme/checkpoint.py.
        self._checkpoint_pages: list[int] = []
        self._checkpoint_len = 0

        #: Engine hook fired when a *maintenance* path (demotion collect,
        #: zone split, hot-zone compaction) finds a slot whose payload no
        #: longer matches its checksum.  Called as ``hook(key, promoted)``
        #: after the corrupt resident copy has been dropped; ``promoted``
        #: tells the engine whether the capacity tier still holds an
        #: authoritative twin (drop is lossless) or the newest copy is gone.
        self.on_corrupt_slot: Optional[Callable[[bytes, bool], None]] = None

    def _make_tracker(self, avg_object_size: float) -> HotnessTracker:
        capacity_objects = max(
            1,
            int(self.page_budget * self.page_store.page_size / max(1.0, avg_object_size)),
        )
        # The chain of filters jointly spans the interval threshold (§3.3:
        # "the number of objects that NVMe storage can store"), so each
        # window covers 1/max_filters of it.
        window = max(1, capacity_objects // self.config.tracker_max_filters)
        return HotnessTracker(
            window,
            max_filters=self.config.tracker_max_filters,
            hot_threshold=self.config.tracker_hot_threshold,
            bits_per_key=self.config.tracker_bits_per_key,
        )

    def _maybe_calibrate_tracker(self) -> None:
        """Re-size the discriminator window once Eq. 1 has a stable estimate."""
        if self._tracker_calibrated or self._written_objects < 512:
            return
        measured = self.average_object_size()
        current = self.tracker.discriminator.window_capacity
        target = max(
            1, int(self.page_budget * self.page_store.page_size / measured)
        )
        if not 0.5 <= target / max(1, current) <= 2.0:
            self.tracker = self._make_tracker(measured)
            self._record_access = self.tracker.discriminator.access
        self._tracker_calibrated = True

    # --------------------------------------------------------------- zones

    def _init_zones(self) -> None:
        import numpy as np

        from repro.common.keys import decode_key, encode_key

        n = max(1, self.config.initial_zones_per_partition)
        lo = decode_key(self.key_range.lo)
        hi = decode_key(self.key_range.hi)
        step = (hi - lo) / n
        bounds = [lo + int(i * step) for i in range(n)]
        for i, b in enumerate(bounds):
            zlo = self.key_range.lo if i == 0 else encode_key(b)
            zhi = encode_key(bounds[i + 1]) if i + 1 < n else self.key_range.hi
            zone = self._new_zone(KeyRange(zlo, zhi))
            self._zones.append(zone)
            self._zone_bounds.append(zlo)

    def _new_zone(self, key_range: Optional[KeyRange]) -> Zone:
        self._zone_seq += 1
        zone_id = self.partition_id * 1_000_000 + self._zone_seq
        zone = Zone(zone_id, key_range, self.page_store)
        zone.page_counter = self._used_pages_box
        self._zone_map[zone_id] = zone
        return zone

    def zone_for_key(self, key: bytes) -> Zone:
        """The regular zone whose range contains ``key``."""
        if not self.key_range.contains(key):
            raise ReproError(
                f"key {key!r} outside partition {self.partition_id} range"
            )
        idx = bisect_right(self._zone_bounds, key) - 1
        return self._zones[idx]

    def zones(self) -> list[Zone]:
        return list(self._zones)

    # ------------------------------------------------------ Eq. 1 / Eq. 2

    def average_object_size(self) -> float:
        """Eq. 1: mean on-media object size over all slot files."""
        if self._written_objects == 0:
            return float(self.config.slot_classes[0])
        return self._written_bytes / self._written_objects

    def zone_target_objects(self) -> int:
        """Eq. 2: R = B / O — objects a migration-batch-sized zone holds."""
        return max(1, int(self.config.migration_batch_bytes / self.average_object_size()))

    # -------------------------------------------------------------- space

    @property
    def used_pages(self) -> int:
        # Maintained incrementally by the zones (see ``_used_pages_box``);
        # equal to hot_zone.total_pages() + sum over regular zones.
        return self._used_pages_box[0]

    @property
    def fill_fraction(self) -> float:
        return self.used_pages / self.page_budget if self.page_budget else 1.0

    def over_high_watermark(self) -> bool:
        # Same math as ``fill_fraction >= high_watermark`` without the
        # property hops — this sits on every put.
        budget = self.page_budget
        fill = self._used_pages_box[0] / budget if budget else 1.0
        return fill >= self.config.high_watermark

    def below_low_watermark(self) -> bool:
        return self.fill_fraction <= self.config.low_watermark

    def object_count(self) -> int:
        return len(self.index)

    def used_bytes(self) -> int:
        return self.hot_zone.used_bytes + sum(z.used_bytes for z in self._zones)

    # -------------------------------------------------------------- writes

    def put(
        self, rec: Record, kind: TrafficKind = TrafficKind.FOREGROUND
    ) -> float:
        """Insert or update an object.  Returns the service time charged.

        Runs inside a device health epoch: the tombstone-then-rewrite path
        (and any zone split it triggers) must not be torn by a health
        window opening between its I/Os.
        """
        self._record_access(rec.key)
        with self.page_store.device.health_epoch:
            return self._put_locked(rec, kind)

    def _put_locked(self, rec: Record, kind: TrafficKind) -> float:
        """The :meth:`put` body, minus tracker touch and health epoch.

        Batched callers that have already established (or safely skipped)
        the epoch call this directly; see :meth:`put_many`.
        """
        service = 0.0
        loc: Optional[SlotLocation] = self.index.get(rec.key)
        needed = rec.encoded_size
        if loc is not None and needed <= loc.slot_size:
            zone = self._zone_by_id(loc.zone_id)
            new_loc, s = zone.update_in_place(loc, rec, kind, self.cache)
            # An updated object diverges from its SATA copy: it can no
            # longer be dropped on eviction, so the promotion label is
            # cleared.
            new_loc.promoted = False
            self.index.insert(rec.key, new_loc)
            self._written_bytes += needed
            self._written_objects += 1
            # In-place updates count toward Eq. 1 too: without this,
            # update-heavy workloads never reach the calibration point
            # and the tracker window stays at its construction guess.
            self._maybe_calibrate_tracker()
            return s
        # New object, or resized: new slot, tombstone at the old location.
        if loc is not None:
            old_zone = self._zone_by_id(loc.zone_id)
            service += old_zone.write_tombstone(loc, kind, self.cache)
            old_zone.remove_object(rec.key, loc)
        zone = self.zone_for_key(rec.key)
        slot_size = self.config.slot_class_for(needed)
        new_loc, s = zone.write_record(rec, slot_size, kind, self.cache)
        service += s
        self.index.insert(rec.key, new_loc)
        self._written_bytes += needed
        self._written_objects += 1
        self._maybe_calibrate_tracker()
        self._maybe_split_zone(zone)
        return service

    def _put_locked_deferred(self, rec: Record, kind: TrafficKind, defer, flush):
        """:meth:`_put_locked` with the slot-write charge deferred.

        ``defer(npages)`` registers the current op's foreground slot write
        with the caller's charge group; ``flush()`` applies the group.
        The common paths (in-place update, fresh slot) splice pages
        without charging and defer; the rare paths that charge other I/O
        directly — resized-slot rewrite, and the zone split's GC — flush
        first, so the device ledger advances in exactly the per-op order.
        Returns the service charged directly, or ``None`` when the charge
        was fully deferred.  Fastpath-only: callers gate on the devices
        being unguarded.
        """
        loc: Optional[SlotLocation] = self.index.get(rec.key)
        needed = rec.encoded_size
        if loc is not None and needed <= loc.slot_size:
            zone = self._zone_by_id(loc.zone_id)
            new_loc, npages = zone.update_in_place_deferred(loc, rec, self.cache)
            defer(npages)
            new_loc.promoted = False
            self.index.insert(rec.key, new_loc)
            self._written_bytes += needed
            self._written_objects += 1
            self._maybe_calibrate_tracker()
            return None
        if loc is not None:
            # Resized: the tombstone and rewrite charge immediately, so
            # the group's earlier charges must land first.
            flush()
            old_zone = self._zone_by_id(loc.zone_id)
            service = old_zone.write_tombstone(loc, kind, self.cache)
            old_zone.remove_object(rec.key, loc)
            zone = self.zone_for_key(rec.key)
            slot_size = self.config.slot_class_for(needed)
            new_loc, s = zone.write_record(rec, slot_size, kind, self.cache)
            service += s
            self.index.insert(rec.key, new_loc)
            self._written_bytes += needed
            self._written_objects += 1
            self._maybe_calibrate_tracker()
            self._maybe_split_zone(zone)
            return service
        zone = self.zone_for_key(rec.key)
        slot_size = self.config.slot_class_for(needed)
        new_loc, npages = zone.write_record_deferred(rec, slot_size, self.cache)
        defer(npages)
        self.index.insert(rec.key, new_loc)
        self._written_bytes += needed
        self._written_objects += 1
        self._maybe_calibrate_tracker()
        # Inlined _maybe_split_zone's cheapest early-outs (identical
        # checks): most puts skip the call entirely.
        if zone.key_range is not None and len(zone.keys) > 8:
            self._maybe_split_zone(zone, pre_charge=flush)
        return None

    def put_many(
        self, recs, kind: TrafficKind = TrafficKind.FOREGROUND
    ) -> list[float]:
        """Batched :meth:`put` over a sequence of records.

        When the device is health-guarded, each put needs its own epoch
        (window boundaries must land between ops), so the batch degrades
        to per-op puts.  Unguarded, epochs are pure no-ops and the loop
        is fused.  ``self.tracker`` is re-read every iteration: a put may
        trigger tracker calibration, replacing it mid-batch.
        """
        if self.page_store.device._health_guarded:
            return [self.put(rec, kind) for rec in recs]
        out = []
        for rec in recs:
            self._record_access(rec.key)
            out.append(self._put_locked(rec, kind))
        return out

    def delete(self, key: bytes, kind: TrafficKind = TrafficKind.FOREGROUND) -> float:
        """Remove an object (tombstone the slot, drop the index entry)."""
        loc: Optional[SlotLocation] = self.index.get(key)
        if loc is None:
            return 0.0
        zone = self._zone_by_id(loc.zone_id)
        service = zone.write_tombstone(loc, kind, self.cache)
        zone.remove_object(key, loc)
        self.index.delete(key)
        return service

    def _zone_by_id(self, zone_id: int) -> Zone:
        zone = self._zone_map.get(zone_id)
        if zone is None:
            raise ReproError(
                f"zone {zone_id} not found in partition {self.partition_id}"
            )
        return zone

    # --------------------------------------------------------------- reads

    def get(
        self, key: bytes, kind: TrafficKind = TrafficKind.FOREGROUND
    ) -> tuple[Optional[Record], float]:
        """Point lookup.  Returns ``(record_or_none, service_time)``."""
        self._record_access(key)
        loc: Optional[SlotLocation] = self.index.get(key)
        if loc is None:
            return None, 0.0
        zone = self._zone_by_id(loc.zone_id)
        rec, service = zone.read_object(loc, kind, self.cache)
        return rec, service

    def contains(self, key: bytes) -> bool:
        return key in self.index

    def resident_location(self, key: bytes) -> Optional[SlotLocation]:
        """Index-only residency peek: no device I/O, no tracker access."""
        return self.index.get(key)

    def drop_resident(self, key: bytes) -> bool:
        """Forget a resident object without touching the device.

        Used by failover writes while the NVMe device is OFFLINE: the new
        version lands in the capacity tier, and the stale resident copy must
        not shadow it after recovery.  Slot and page bookkeeping are
        in-memory (frees charge no I/O), so this is legal mid-outage.
        """
        loc: Optional[SlotLocation] = self.index.get(key)
        if loc is None:
            return False
        self._zone_by_id(loc.zone_id).remove_object(key, loc)
        self.index.delete(key)
        return True

    def keys_in_range(self, start: bytes, end: Optional[bytes]) -> list[bytes]:
        """Index-only ordered key listing (used by scans)."""
        return [k for k, _ in self.index.items(start=start, end=end)]

    # ---------------------------------------------------------- promotion

    def promote(self, rec: Record, kind: TrafficKind = TrafficKind.MIGRATION) -> float:
        """Install a hot object read from the capacity tier into the hot zone.

        The object is flagged ``promoted``: the authoritative copy stays in
        SATA, so hot-zone eviction can drop it without relocation (§3.5).
        """
        existing: Optional[SlotLocation] = self.index.get(rec.key)
        if existing is not None:
            return 0.0  # already resident
        with self.page_store.device.health_epoch:
            slot_size = self.config.slot_class_for(rec.encoded_size)
            loc, service = self.hot_zone.write_record(
                rec, slot_size, kind, self.cache, promoted=True
            )
            self.index.insert(rec.key, loc)
            self._written_bytes += rec.encoded_size
            self._written_objects += 1
            service += self._evict_hot_zone_if_needed(kind)
            return service

    def _hot_zone_page_budget(self) -> int:
        """The hot zone may grow into whatever the regular zones don't use
        (up to the high watermark), but always keeps its reserved fraction.
        Promotions thus displace cold zones — via demotion — instead of
        being capped while the fast tier idles (§3.5 read-heavy flow)."""
        reserve = max(1, int(self.page_budget * self.config.hot_zone_fraction))
        regular = self.used_pages - self.hot_zone.total_pages()
        headroom = int(self.page_budget * self.config.high_watermark) - regular
        return max(reserve, headroom)

    def _evict_hot_zone_if_needed(
        self, kind: TrafficKind, max_scan: int = 128
    ) -> float:
        """Shed non-hot hot-zone residents, FIFO-clock style.

        Work per call is bounded: at most ``max_scan`` keys are examined,
        oldest first; still-hot keys are rotated to the back (a second
        chance), so repeated calls make progress without rescanning the
        whole zone each time.
        """
        service = 0.0
        budget = self._hot_zone_page_budget()
        if self.hot_zone.total_pages() <= budget:
            return service
        scanned = 0
        keys = self.hot_zone.keys
        while keys and scanned < max_scan:
            if self.hot_zone.total_pages() <= budget:
                break
            key = next(iter(keys))
            scanned += 1
            loc: SlotLocation = self.index.get(key)
            if loc is None or loc.zone_id != self.hot_zone.zone_id:
                keys.pop(key, None)
                continue
            if self.tracker.is_hot(key):
                # Second chance: rotate to the back of the scan order.
                keys.pop(key, None)
                keys[key] = None
                continue
            if loc.promoted:
                # SATA still holds the object: drop without relocation.
                self.hot_zone.remove_object(key, loc)
                self.index.delete(key)
            else:
                try:
                    rec, s_read = self.hot_zone.read_object(loc, kind, self.cache)
                except CorruptionError:
                    self._drop_corrupt_slot(self.hot_zone, key, loc)
                    continue
                service += s_read
                self.hot_zone.remove_object(key, loc)
                zone = self.zone_for_key(key)
                slot_size = self.config.slot_class_for(rec.encoded_size)
                new_loc, s_write = zone.write_record(rec, slot_size, kind, self.cache)
                service += s_write
                self.index.insert(key, new_loc)
        return service

    def park_in_hot_zone(self, rec: Record, loc: SlotLocation, kind: TrafficKind) -> float:
        """Relocate an NVMe-resident hot object into the hot zone (used when
        its regular zone is being demoted)."""
        self._zone_by_id(loc.zone_id).remove_object(rec.key, loc)
        slot_size = self.config.slot_class_for(rec.encoded_size)
        new_loc, service = self.hot_zone.write_record(
            rec, slot_size, kind, self.cache, promoted=loc.promoted
        )
        self.index.insert(rec.key, new_loc)
        return service

    # ------------------------------------------------- corruption handling

    def _decode_slot(self, loc: SlotLocation) -> Record:
        """Decode a resident slot from already-read pages, checksum first.

        Maintenance paths (demotion collect, zone split) bulk-read a zone's
        pages and then :meth:`~repro.nvme.pagestore.PageStore.peek` each
        slot for free; this helper adds the same integrity gate as
        :meth:`repro.nvme.zone.Zone.read_object`, so a latent bit flip in
        the value bytes — structurally invisible to ``decode_one`` —
        surfaces as :class:`CorruptionError` instead of being relocated
        verbatim.
        """
        raw = self.page_store.peek(loc.page_id, loc.offset, loc.record_size)
        if loc.crc is not None and zlib.crc32(raw) != loc.crc:
            raise CorruptionError(
                f"zone {loc.zone_id} slot checksum mismatch on page "
                f"{loc.page_id} slot {loc.slot_index}"
            )
        return decode_one(raw)

    def _drop_corrupt_slot(self, zone: Zone, key: bytes, loc: SlotLocation) -> None:
        """A maintenance path hit a corrupt slot: drop it, don't crash.

        A promoted slot still has its authoritative twin on the capacity
        tier, so dropping the resident copy loses nothing; a non-promoted
        slot *was* the newest copy, and the loss is reported through
        :attr:`on_corrupt_slot` so the engine can count it (and, in a
        cluster, re-replicate the key from a healthy replica).
        """
        zone.remove_object(key, loc)
        self.index.delete(key)
        hook = self.on_corrupt_slot
        if hook is not None:
            hook(key, loc.promoted)

    # ----------------------------------------------------------- demotion

    def select_demotion_zone(self) -> Optional[Zone]:
        """Highest benefit/cost zone (§3.5)."""
        candidates = [z for z in self._zones if z.object_count > 0]
        if not candidates:
            return None
        return max(candidates, key=lambda z: z.demotion_score())

    def collect_zone(
        self, zone: Zone, kind: TrafficKind = TrafficKind.MIGRATION
    ) -> tuple[list[Record], float]:
        """Read a zone's pages and extract its objects for demotion.

        Hot objects are parked in the hot zone instead of being returned
        (§3.2: "HyperDB does not migrate frequently accessed data").
        The zone's pages are freed and its read counter reset.

        Runs inside a device health epoch so an NVMe health window cannot
        tear a park (object removed from its zone but not yet rewritten).
        """
        with self.page_store.device.health_epoch:
            page_ids = zone.page_ids()
            _, service = self.page_store.read_many(page_ids, kind)
            demoted: list[Record] = []
            keys = sorted(zone.keys)
            # Columnar hotness verdicts for the whole zone up front: no
            # access is recorded during collection, so the discriminator is
            # frozen and the batched probe returns exactly what per-key
            # ``is_hot`` calls inside the loop would.  The tracker's
            # query/hit counters still advance per *consulted* key below
            # (stale index entries are skipped before consulting, exactly
            # like the scalar path).
            tracker = self.tracker
            hot_flags = tracker.discriminator.is_hot_many(keys)
            demoted_append = demoted.append
            for key, hot in zip(keys, hot_flags):
                loc: SlotLocation = self.index.get(key)
                if loc is None or loc.zone_id != zone.zone_id:
                    continue
                try:
                    rec = self._decode_slot(loc)
                except CorruptionError:
                    self._drop_corrupt_slot(zone, key, loc)
                    continue
                rec = Record(key, rec.value, rec.seqno, rec.deleted)
                tracker.queries += 1
                # Hot objects are parked rather than demoted, but only while
                # the hot zone has budget — otherwise they migrate like
                # anything else.
                if hot:
                    tracker.hot_hits += 1
                    if self.hot_zone.total_pages() < self._hot_zone_page_budget():
                        service += self.park_in_hot_zone(rec, loc, kind)
                        continue
                zone.remove_object(key, loc)
                self.index.delete(key)
                demoted_append(rec)
            zone.reset_read_counter()
            return demoted, service

    # --------------------------------------------------------- checkpoint

    def checkpoint(self, kind: TrafficKind = TrafficKind.GC) -> float:
        """Persist the index backup to NVMe (§3.1).  Returns service time."""
        from repro.nvme.checkpoint import PartitionCheckpoint

        with self.page_store.device.health_epoch:
            return PartitionCheckpoint.write(self, kind)

    def recover(self) -> float:
        """Rebuild in-memory index/zones from the last checkpoint.

        Raises :class:`repro.common.errors.RecoveryError` when no checkpoint
        exists and :class:`CorruptionError` when the stored image fails its
        CRC — callers choose between failing hard and :meth:`reset_state`.

        Limitations (documented in :mod:`repro.nvme.checkpoint`): writes
        after the last checkpoint are lost, and continuation pages of
        oversized (multi-page) slots are not re-tracked.
        """
        from repro.nvme.checkpoint import PartitionCheckpoint

        return PartitionCheckpoint.recover(self)

    def reset_state(self) -> None:
        """Degraded rebuild: bring the partition back empty.

        Used when :meth:`recover` finds no checkpoint or a corrupt one —
        every page the partition owned (zones, hot zone, checkpoint) is
        released and the in-memory structures are re-initialized, so the
        engine restarts with data loss bounded to this partition instead
        of refusing to open.
        """
        for zone in [self.hot_zone] + self._zones:
            for pid in zone.page_ids():
                self.page_store.free(pid)
        for pid in self._checkpoint_pages:
            self.page_store.free(pid)
        self._checkpoint_pages = []
        self._checkpoint_len = 0
        self.index = BTreeIndex(order=64)
        self._zones = []
        self._zone_bounds = []
        self._zone_map.clear()
        # Pages above were freed behind the zones' backs, so re-zero the
        # shared counter before fresh zones start mirroring into it.
        self._used_pages_box[0] = 0
        self._init_zones()
        self.hot_zone = self._new_zone(None)
        self._written_bytes = 0
        self._written_objects = 0
        self.tracker = self._make_tracker(max(64, self.config.slot_classes[0]))
        self._record_access = self.tracker.discriminator.access
        self._tracker_calibrated = False

    # ------------------------------------------------------- zone rebuild

    def _maybe_split_zone(self, zone: Zone, pre_charge=None) -> None:
        """Rebuild an oversized zone into two (§3.2 periodic re-sizing).

        Splitting physically resettles the zone's objects so each new zone's
        pages contain only its own range — charged as GC traffic.
        ``pre_charge`` (when given) is invoked once the split is committed,
        before its first charge: callers holding a deferred foreground
        charge group flush it there so ledger order stays per-op exact.
        """
        # Inlined ``zone_target_objects() * zone_split_factor`` (identical
        # math): this check runs on every new-slot put, and the limit is
        # never needed for zones at or below the unconditional floor of 8.
        # ``is_hot_zone`` / ``object_count`` are inlined too (attribute
        # tests beat property descriptors on this frequency).
        count = len(zone.keys)
        if zone.key_range is None or count <= 8:
            return
        wo = self._written_objects
        cfg = self.config
        avg = self._written_bytes / wo if wo else float(cfg.slot_classes[0])
        limit = int(max(1, int(cfg.migration_batch_bytes / avg)) * cfg.zone_split_factor)
        if count <= max(limit, 8):
            return
        # Resettling transiently needs fresh pages while the old zone still
        # holds its own; without headroom the split waits for migration.
        device = self.page_store.device
        if device.free_pages < zone.total_pages() + 2:
            return
        if pre_charge is not None:
            pre_charge()
        keys = sorted(zone.keys)
        median = keys[len(keys) // 2]
        if median == zone.key_range.lo:
            return  # degenerate: all keys equal
        idx = self._zones.index(zone)
        left = self._new_zone(KeyRange(zone.key_range.lo, median))
        right = self._new_zone(KeyRange(median, zone.key_range.hi))

        # Resettle: one bulk read of the old zone, rewrites into the halves.
        # On the unguarded fastpath the slot writes defer their charges and
        # pay with one grouped delta — no other charge interleaves with the
        # loop (frees and cache invalidations never touch the ledger), so
        # the ledger sequence is identical to per-slot charging.
        # Each zone rebuild is one GC job: place it on the least-busy
        # background queue (no-op on single-queue devices).
        device.begin_background_job(TrafficKind.GC)
        self.page_store.read_many(zone.page_ids(), TrafficKind.GC)
        fast = device._fastpath and obs.RECORDER is None
        pending: list[int] = []
        for key in keys:
            loc: SlotLocation = self.index.get(key)
            if loc is None or loc.zone_id != zone.zone_id:
                continue
            try:
                rec = self._decode_slot(loc)
            except CorruptionError:
                self._drop_corrupt_slot(zone, key, loc)
                continue
            rec = Record(key, rec.value, rec.seqno, rec.deleted)
            dest = left if key < median else right
            zone.remove_object(key, loc)
            if fast:
                new_loc, npages = dest.write_record_deferred(
                    rec, loc.slot_size, self.cache, promoted=loc.promoted
                )
                pending.append(npages)
            else:
                new_loc, _ = dest.write_record(
                    rec, loc.slot_size, TrafficKind.GC, self.cache,
                    promoted=loc.promoted,
                )
            self.index.insert(key, new_loc)
        if pending:
            device.write_pages_batch(pending, TrafficKind.GC, sequential=False)
        self._zones[idx : idx + 1] = [left, right]
        self._zone_bounds[idx : idx + 1] = [left.key_range.lo, median]
        # The split zone is dead: stale locations naming it must fail.
        del self._zone_map[zone.zone_id]

"""The cluster coordinator: quorum routing over N HyperDB nodes.

:class:`HyperDBCluster` composes :class:`~repro.cluster.node.ClusterNode`
instances behind a :class:`~repro.cluster.ring.HashRing`.  Every client
operation walks the key's preference list in ring order:

* **Writes** are sent to all ``RF`` replicas and acked once ``W`` accept;
  replicas missed because their node was down get a *hint* (when the write
  still made quorum), replayed when the node returns.  Fewer than ``W``
  acks raises :class:`~repro.common.errors.QuorumError` — unavailability,
  never loss: nothing was promised.
* **Reads** collect ``R`` replica responses and resolve
  newest-sequence-number-wins; replicas observed stale (or empty) are
  *read-repaired* with the winning envelope on the spot.
* ``R + W > RF`` is validated at construction, so a read quorum always
  intersects the last acked write quorum — the invariant the cluster
  integrity oracle leans on.

Node health reuses :class:`repro.health.state.HealthWindow` at node
granularity: windows are keyed on the *cluster op clock* (one tick per
client operation), the node analogue of the device layer's global I/O
ordinal — deterministic, and aged only by traffic the cluster actually
serves.  Membership changes (:meth:`add_node` / :meth:`remove_node`)
produce explicit migration jobs computed from the ring diff and executed
deterministically, with ``rebalance`` obs spans bracketing each job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import obs
from repro.common.errors import (
    ConfigError,
    CorruptionError,
    DeviceOfflineError,
    OutOfSpaceError,
    QuorumError,
)
from repro.common.stats import StatsRegistry
from repro.cluster.node import ClusterNode, pack_envelope
from repro.cluster.ring import HashRing
from repro.health.state import HealthState, HealthWindow, resolve_health


@dataclass(frozen=True)
class ClusterConfig:
    """Membership and quorum shape of one cluster.

    ``replication_factor`` copies of every key; reads need ``read_quorum``
    replica responses, writes ``write_quorum`` acks.  ``R + W > RF`` is
    required (rejected with :class:`~repro.common.errors.ConfigError`, a
    ``ValueError``) so read and write quorums always intersect.
    """

    num_nodes: int = 3
    replication_factor: int = 3
    read_quorum: int = 2
    write_quorum: int = 2
    vnodes: int = 8

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigError(f"need at least one node, got {self.num_nodes}")
        rf, r, w = self.replication_factor, self.read_quorum, self.write_quorum
        if not 1 <= rf <= self.num_nodes:
            raise ConfigError(
                f"replication_factor must be in [1, num_nodes={self.num_nodes}], "
                f"got {rf}"
            )
        if not 1 <= r <= rf or not 1 <= w <= rf:
            raise ConfigError(
                f"quorums must be in [1, rf={rf}], got R={r} W={w}"
            )
        if r + w <= rf:
            raise ConfigError(
                f"R+W must exceed RF for quorum intersection "
                f"(got R={r} + W={w} = {r + w} <= RF={rf}); raise R or W"
            )


@dataclass
class _RebalanceJob:
    """One planned shard move: copy ``keys`` onto ``dst`` from survivors."""

    dst: str
    keys: list[bytes] = field(default_factory=list)
    copied: int = 0
    hinted: int = 0
    skipped: int = 0


class HyperDBCluster:
    """A deterministic sharded cluster of single-node HyperDB instances."""

    def __init__(
        self,
        config: ClusterConfig,
        windows: tuple[HealthWindow, ...] = (),
        seed: int = 0,
        node_names: Optional[list[str]] = None,
        scrub=None,
        injectors: Optional[dict] = None,
    ) -> None:
        self.config = config
        self.windows = tuple(windows)
        self.seed = seed
        #: Optional per-node integrity knobs: ``scrub`` (a
        #: :class:`repro.scrub.ScrubConfig`) arms every node's background
        #: scrubber; ``injectors`` maps node name to a
        #: :class:`repro.simssd.faults.FaultInjector` shared by that
        #: node's devices (latent corruption soaks).  Both default to off,
        #: leaving existing cluster behavior and digests untouched.
        self._scrub = scrub
        self._injectors = dict(injectors or {})
        names = node_names or [f"node-{i}" for i in range(config.num_nodes)]
        if len(names) != config.num_nodes:
            raise ConfigError(
                f"{len(names)} node names for num_nodes={config.num_nodes}"
            )
        self.ring = HashRing(names, vnodes=config.vnodes)
        self.nodes: dict[str, ClusterNode] = {
            name: ClusterNode(
                name,
                rng_seed=seed * 1_000_003 + sum(name.encode()),
                injector=self._injectors.get(name),
                scrub=scrub,
            )
            for name in names
        }
        #: Cluster op clock: one tick per client operation (1-based, the
        #: ordinal node health windows are keyed on).
        self.clock = 0
        self._seqno = 0
        #: Pending hinted-handoff envelopes per down node, in write order.
        self.hints: dict[str, list[tuple[int, bytes, bytes]]] = {}
        #: Suspect keys whose anti-entropy audit read could not reach
        #: quorum (replicas down); re-queued for the next pass so an
        #: outage can defer healing but never cancel it.
        self.unhealed_suspects: list[bytes] = []
        #: Every key that reached at least one replica (the rebalance
        #: planner's key universe; sorted iteration keeps plans stable).
        self.keys_seen: set[bytes] = set()
        self.stats = StatsRegistry()
        #: Per-node replica rejections attributed via ``node_id``.
        self.offline_rejections: dict[str, int] = {n: 0 for n in names}
        self.brownout_ops: dict[str, int] = {n: 0 for n in names}
        self.rebalance_jobs: list[_RebalanceJob] = []
        self._service_total = 0.0

    # --------------------------------------------------------------- health

    def node_health(self, name: str, at: Optional[int] = None) -> HealthState:
        """Health of ``name`` at cluster tick ``at`` (default: next op)."""
        tick = self.clock + 1 if at is None else at
        return resolve_health(self.windows, name, tick)[0]

    def all_healthy(self) -> bool:
        return all(
            self.node_health(n) is HealthState.HEALTHY for n in self.nodes
        )

    def _replica_guard(self, name: str) -> float:
        """Pre-flight one replica op: raise if the node is down.

        Returns the brownout latency multiplier (1.0 when healthy).  The
        raised :class:`DeviceOfflineError` carries ``node_id`` so the
        quorum loop can attribute the rejection per node.
        """
        state, mult = resolve_health(self.windows, name, self.clock)
        if state is HealthState.OFFLINE:
            self.offline_rejections[name] += 1
            raise DeviceOfflineError(
                f"node {name!r} offline at cluster tick {self.clock}",
                node_id=name,
            )
        if state is HealthState.BROWNOUT:
            self.brownout_ops[name] += 1
        return mult

    # ---------------------------------------------------------------- write

    def put(self, key: bytes, value: bytes) -> float:
        """Quorum write; returns service seconds.  Raises
        :class:`QuorumError` when fewer than W replicas accept."""
        self.stats.counter("puts").add()
        return self._quorum_write(key, value, tombstone=False)

    def delete(self, key: bytes) -> float:
        """Quorum delete (a tombstone envelope, never an engine delete)."""
        self.stats.counter("deletes").add()
        return self._quorum_write(key, b"", tombstone=True)

    # ------------------------------------------------------------- batches
    #
    # Batch entry points mirroring the single-node ``KVStore`` batch API.
    # Quorum resolution is inherently per-key (each key has its own
    # replica set and health outcome), so these are per-op loops — the
    # win is one Python call per batch at the client boundary, plus
    # uniform error capture for soak drivers.  Results are identical to
    # the equivalent per-op sequence: same clock ticks, same hint
    # replays, same counters.

    def put_many(
        self, keys, values, capture_errors: bool = False
    ) -> list:
        """Quorum-write each pair; returns per-op service seconds.

        With ``capture_errors`` a failed op's slot holds the raised
        :class:`QuorumError` instead of aborting the batch.
        """
        out: list = []
        for key, value in zip(keys, values):
            try:
                out.append(self.put(key, value))
            except QuorumError as exc:
                if not capture_errors:
                    raise
                out.append(exc)
        return out

    def get_many(self, keys, capture_errors: bool = False) -> list:
        """Quorum-read each key; returns ``(payload, service)`` tuples
        (or the :class:`QuorumError` per failed op under
        ``capture_errors``)."""
        out: list = []
        for key in keys:
            try:
                out.append(self.get(key))
            except QuorumError as exc:
                if not capture_errors:
                    raise
                out.append(exc)
        return out

    def delete_many(self, keys, capture_errors: bool = False) -> list:
        """Quorum-delete each key; same conventions as :meth:`put_many`."""
        out: list = []
        for key in keys:
            try:
                out.append(self.delete(key))
            except QuorumError as exc:
                if not capture_errors:
                    raise
                out.append(exc)
        return out

    def _quorum_write(self, key: bytes, payload: bytes, tombstone: bool) -> float:
        self.clock += 1
        self._replay_due_hints()
        self._seqno += 1
        envelope = pack_envelope(self._seqno, payload, tombstone)
        replicas = self.ring.replicas_for(key, self.config.replication_factor)
        service = 0.0
        acked: list[str] = []
        failures: dict[str, str] = {}
        for name in replicas:
            try:
                mult = self._replica_guard(name)
            except DeviceOfflineError as exc:
                failures[exc.node_id or name] = "offline"
                continue
            try:
                service += self.nodes[name].put_envelope(key, envelope) * mult
            except OutOfSpaceError as exc:
                failures[exc.node_id or name] = "out_of_space"
                continue
            acked.append(name)
        self._service_total += service
        w = self.config.write_quorum
        ok = len(acked) >= w
        rec = obs.RECORDER
        if rec is not None:
            rec.emit(
                "quorum", t=self._service_total, op="write",
                acks=len(acked), required=w,
                rf=len(replicas), ok=ok, replicas=",".join(replicas),
            )
        if ok and len(acked) >= 1:
            self.keys_seen.add(key)
        if not ok:
            if acked:
                # Partial, unacked write: the value sits on a minority of
                # replicas and may surface later (newest-wins makes that
                # safe); the client was promised nothing.
                self.keys_seen.add(key)
            self.stats.counter("quorum_write_failures").add()
            raise QuorumError(
                "write", acks=len(acked), required=w,
                rf=len(replicas), failures=failures,
            )
        for name in replicas:
            if name not in acked:
                self.hints.setdefault(name, []).append(
                    (self._seqno, key, envelope)
                )
                self.stats.counter("hints_stored").add()
                if rec is not None:
                    rec.emit(
                        "handoff_stored", t=self._service_total,
                        node=name, seqno=self._seqno,
                    )
        self.stats.counter("quorum_writes").add()
        return service

    # ----------------------------------------------------------------- read

    def get(self, key: bytes) -> tuple[Optional[bytes], float]:
        """Quorum read; returns ``(payload or None, service seconds)``.

        Collects R replica responses in preference order, resolves
        newest-wins, and read-repairs any contacted replica that returned
        a stale or missing copy.  Raises :class:`QuorumError` when fewer
        than R replicas could respond.
        """
        self.stats.counter("gets").add()
        self.clock += 1
        self._replay_due_hints()
        value, service = self._read_resolve(key, self.config.read_quorum)
        self._service_total += service
        return value, service

    def read_full(self, key: bytes) -> tuple[Optional[bytes], float]:
        """Read with R=RF (contacts every live replica; repairs all).

        The verification/audit read: after recovery this converges every
        surviving replica of ``key`` to the newest envelope.
        """
        self.clock += 1
        value, service = self._read_resolve(
            key, self.config.replication_factor
        )
        self._service_total += service
        return value, service

    def _read_resolve(
        self, key: bytes, required: int
    ) -> tuple[Optional[bytes], float]:
        replicas = self.ring.replicas_for(key, self.config.replication_factor)
        # A shrunken ring carries fewer than RF replicas; an audit read
        # (R=RF) then needs every remaining one, not an impossible count.
        required = min(required, len(replicas))
        service = 0.0
        responses: list[tuple[str, Optional[tuple[int, bool, bytes]], float]] = []
        failures: dict[str, str] = {}
        #: Replicas whose copy failed its checksum, with their brownout
        #: multiplier — excluded from quorum resolution, repaired below.
        corrupt: list[tuple[str, float]] = []
        for name in replicas:
            if len(responses) >= required:
                break
            try:
                mult = self._replica_guard(name)
            except DeviceOfflineError as exc:
                failures[exc.node_id or name] = "offline"
                continue
            try:
                env, s = self.nodes[name].get_envelope(key)
            except CorruptionError:
                # A corrupt copy is no response: fall through to the next
                # replica (exactly like an offline one) and queue the
                # replica for repair from the winning envelope below.
                failures[name] = "corrupt"
                self.stats.counter("corrupt_replica_reads").add()
                corrupt.append((name, mult))
                continue
            service += s * mult
            responses.append((name, env, mult))
        # A corrupt replica contributes liveness to the quorum — the node
        # answered and will accept the repair write below — but no data, so
        # at least one intact response must exist to resolve from.  Without
        # this an audit read (R=RF) could never converge the one corrupt
        # replica it exists to heal.
        ok = len(responses) >= required or (
            bool(responses) and len(responses) + len(corrupt) >= required
        )
        rec = obs.RECORDER
        if rec is not None:
            rec.emit(
                "quorum", t=self._service_total + service, op="read",
                acks=len(responses), required=required,
                rf=len(replicas), ok=ok, replicas=",".join(replicas),
            )
        if not ok:
            self.stats.counter("quorum_read_failures").add()
            raise QuorumError(
                "read", acks=len(responses), required=required,
                rf=len(replicas), failures=failures,
            )
        newest: Optional[tuple[int, bool, bytes]] = None
        for _, env, _ in responses:
            if env is not None and (newest is None or env[0] > newest[0]):
                newest = env
        if newest is not None:
            seq, tomb, payload = newest
            envelope = pack_envelope(seq, payload, tomb)
            for name, env, mult in responses:
                if env is None or env[0] < seq:
                    service += self.nodes[name].put_envelope(key, envelope) * mult
                    self.stats.counter("read_repairs").add()
                    if rec is not None:
                        rec.emit(
                            "read_repair", t=self._service_total + service,
                            node=name, seqno=seq,
                            stale_seqno=env[0] if env else None,
                        )
            # Corrupt replicas are repaired with the quorum-newest envelope:
            # the re-write lands in the node's fast tier with a newer seqno,
            # shadowing the copy that failed its checksum until the node's
            # own scrub/compaction retires the corrupt bytes.
            for name, mult in corrupt:
                service += self.nodes[name].put_envelope(key, envelope) * mult
                self.stats.counter("read_repairs").add()
                self.stats.counter("corrupt_replica_repairs").add()
                if rec is not None:
                    rec.emit(
                        "read_repair", t=self._service_total + service,
                        node=name, seqno=seq, reason="corrupt",
                    )
            if not tomb:
                return payload, service
        return None, service

    # -------------------------------------------------------- hinted handoff

    def _replay_due_hints(self) -> None:
        """Replay pending hints to every node that is back up."""
        for name in sorted(self.hints):
            if not self.hints[name]:
                continue
            if resolve_health(self.windows, name, self.clock)[0] is HealthState.OFFLINE:
                continue
            self._replay_hints_to(name)

    def drain_hints(self) -> int:
        """Force hint replay to every non-offline node; returns replays."""
        self.clock += 1
        before = self.stats.counter("hints_replayed").value
        self._replay_due_hints()
        return self.stats.counter("hints_replayed").value - before

    def _replay_hints_to(self, name: str) -> None:
        node = self.nodes[name]
        pending = self.hints[name]
        self.hints[name] = []
        rec = obs.RECORDER
        service = 0.0
        for seqno, key, envelope in pending:
            env, s = node.get_envelope(key)
            service += s
            if env is not None and env[0] >= seqno:
                # The node already holds this version or newer (a later
                # write or a read repair landed first); the hint is stale.
                self.stats.counter("hints_obsolete").add()
                continue
            service += node.put_envelope(key, envelope)
            self.stats.counter("hints_replayed").add()
            if rec is not None:
                rec.emit(
                    "handoff_replay", t=self._service_total + service,
                    node=name, seqno=seqno,
                )
        self._service_total += service

    @property
    def pending_hints(self) -> int:
        return sum(len(v) for v in self.hints.values())

    # ---------------------------------------------------------- anti-entropy

    def anti_entropy(self) -> dict[str, int]:
        """One cluster-wide integrity pass: scrub nodes, heal suspect keys.

        Every healthy node with an armed scrubber runs one full scrub pass
        (its local repair ladder heals what it can from the node's own
        redundant tier).  Keys a node could *not* heal — scrub
        unrecoverables plus copies dropped by read paths and maintenance —
        accumulate in ``db.suspect_keys``; this pass drains them and
        converges each one with an audit read (:meth:`read_full`), which
        re-replicates the quorum-newest envelope onto every replica that
        lost or corrupted its copy.  A key is truly lost only when *no*
        replica holds any version, so at RF >= 2 a single corrupt copy is
        always healed here.

        Returns ``{"scrubbed": nodes scrubbed, "suspects": distinct keys
        audited, "repairs": replica re-writes performed, "unreadable":
        suspect keys whose audit read could not reach quorum}``.
        """
        scrubbed = 0
        suspects: list[bytes] = []
        seen: set[bytes] = set()
        for key in self.unhealed_suspects:
            if key not in seen:
                seen.add(key)
                suspects.append(key)
        self.unhealed_suspects = []
        for name in sorted(self.nodes):
            node = self.nodes[name]
            self.clock += 1
            if (
                node.db.scrubber is not None
                and self.node_health(name) is not HealthState.OFFLINE
            ):
                node.db.scrub()
                scrubbed += 1
            for key in node.db.suspect_keys:
                if key not in seen:
                    seen.add(key)
                    suspects.append(key)
            node.db.suspect_keys.clear()
        repairs_before = self.stats.counter("read_repairs").value
        unreadable = 0
        for key in suspects:
            try:
                self.read_full(key)
            except QuorumError:
                # Too few live replicas to audit right now; re-queue the
                # key so the next pass retries once more nodes are up.
                unreadable += 1
                self.unhealed_suspects.append(key)
        repairs = self.stats.counter("read_repairs").value - repairs_before
        self.stats.counter("anti_entropy_passes").add()
        if suspects:
            self.stats.counter("anti_entropy_suspects").add(len(suspects))
        if repairs:
            self.stats.counter("anti_entropy_repairs").add(repairs)
        rec = obs.RECORDER
        if rec is not None:
            rec.emit(
                "anti_entropy", t=self._service_total,
                scrubbed=scrubbed, suspects=len(suspects),
                repairs=repairs, unreadable=unreadable,
            )
        return {
            "scrubbed": scrubbed,
            "suspects": len(suspects),
            "repairs": repairs,
            "unreadable": unreadable,
        }

    # ------------------------------------------------------------ rebalance

    def add_node(self, name: str) -> list[_RebalanceJob]:
        """Join ``name`` and migrate the shards it now replicates."""
        old_ring = self._ring_copy()
        self.nodes[name] = ClusterNode(
            name,
            rng_seed=self.seed * 1_000_003 + sum(name.encode()),
            injector=self._injectors.get(name),
            scrub=self._scrub,
        )
        self.offline_rejections.setdefault(name, 0)
        self.brownout_ops.setdefault(name, 0)
        self.ring.add(name)
        return self._rebalance(old_ring)

    def remove_node(self, name: str) -> list[_RebalanceJob]:
        """Gracefully drain ``name``: re-replicate its shards, then drop it.

        The leaving node stays available as a copy *source* during the
        rebalance (a graceful drain, not a crash — crashes are what health
        windows model).
        """
        old_ring = self._ring_copy()
        self.ring.remove(name)
        jobs = self._rebalance(old_ring)
        del self.nodes[name]
        self.hints.pop(name, None)
        return jobs

    def _ring_copy(self) -> HashRing:
        return HashRing(self.ring.nodes, vnodes=self.config.vnodes)

    def _rebalance(self, old_ring: HashRing) -> list[_RebalanceJob]:
        """Copy every key that gained a replica onto its new home.

        One migration job per destination node, executed in sorted order.
        Sources are the key's *old* replicas that are currently up; the
        newest envelope among them wins.  A down destination gets hints
        instead of copies; a key with no live source is counted
        ``skipped`` (it will converge via hints/read-repair later).
        """
        rf = self.config.replication_factor
        keys = sorted(self.keys_seen)
        gains = old_ring.diff(self.ring, keys, rf)
        rec = obs.RECORDER
        jobs: list[_RebalanceJob] = []
        for dst in sorted(gains):
            job = _RebalanceJob(dst=dst, keys=gains[dst])
            if rec is not None:
                rec.begin(
                    "rebalance", t=self._service_total,
                    dst=dst, keys=len(job.keys),
                )
            dst_down = (
                resolve_health(self.windows, dst, self.clock)[0]
                is HealthState.OFFLINE
            )
            service = 0.0
            for key in job.keys:
                newest = None
                for src in old_ring.replicas_for(key, rf):
                    if src == dst or src not in self.nodes:
                        continue
                    state, _ = resolve_health(self.windows, src, self.clock)
                    if state is HealthState.OFFLINE:
                        continue
                    env, s = self.nodes[src].get_envelope(key)
                    service += s
                    if env is not None and (newest is None or env[0] > newest[0]):
                        newest = env
                if newest is None:
                    job.skipped += 1
                    continue
                envelope = pack_envelope(newest[0], newest[2], newest[1])
                if dst_down:
                    self.hints.setdefault(dst, []).append(
                        (newest[0], key, envelope)
                    )
                    job.hinted += 1
                    self.stats.counter("hints_stored").add()
                else:
                    service += self.nodes[dst].put_envelope(key, envelope)
                    job.copied += 1
                    self.stats.counter("rebalanced_keys").add()
            self._service_total += service
            if rec is not None:
                rec.end(
                    "rebalance", t=self._service_total,
                    dst=dst, copied=job.copied, hinted=job.hinted,
                    skipped=job.skipped,
                )
            jobs.append(job)
        self.rebalance_jobs.extend(jobs)
        return jobs

    # -------------------------------------------------------------- metrics

    def busy_seconds(self) -> float:
        """Total simulated device time across every node."""
        return sum(n.busy_seconds() for n in self.nodes.values())

    def counters(self) -> dict[str, int]:
        return {
            name: self.stats.counter(name).value
            for name in (
                "puts", "deletes", "gets", "quorum_writes",
                "quorum_write_failures", "quorum_read_failures",
                "hints_stored", "hints_replayed", "hints_obsolete",
                "read_repairs", "rebalanced_keys",
            )
        }

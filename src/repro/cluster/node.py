"""One cluster member: a full single-node HyperDB plus replica metadata.

A :class:`ClusterNode` owns its own pair of simulated devices and a
complete :class:`repro.core.hyperdb.HyperDB` — tier placement, migration,
and compaction inside a node behave exactly as on a single-node store;
the cluster layer never reaches around the engine.

Replica versioning rides in an *envelope* around every stored value:
``seqno:8 (big-endian) | flag:1 (0=value, 1=tombstone) | payload``.  The
cluster coordinator assigns monotonically increasing sequence numbers, so
any two replicas' copies of a key are ordered by comparing envelopes —
the basis for quorum resolution, read repair, and hint replay (a
last-writer-wins register, the deterministic core of the CRDT-style
conflict resolution in the pyHMSSQL kvstore reference).  Deletes are
*tombstone envelopes*, not engine-level deletes, so version information
survives and a slow replica cannot resurrect an older value.
"""

from __future__ import annotations

from typing import Optional

from repro.common.keys import KeyRange, encode_key
from repro.core.config import HyperDBConfig
from repro.core.hyperdb import HyperDB
from repro.nvme.config import NVMeConfig
from repro.simssd.device import SimDevice
from repro.simssd.profiles import DeviceProfile

KiB = 1024
MiB = 1024 * KiB

_ENVELOPE_HEADER = 9  # 8-byte seqno + 1 flag byte

#: Small per-node devices, sized like the chaos harness's so a few hundred
#: cluster ops exercise real migrations and watermark pressure per node.
_NODE_NVME = DeviceProfile(
    name="nvme",
    capacity_bytes=1 * MiB,
    page_size=4096,
    read_latency_s=8e-5,
    write_latency_s=2e-5,
    read_bandwidth=6.5e9,
    write_bandwidth=3.5e9,
)
_NODE_SATA = DeviceProfile(
    name="sata",
    capacity_bytes=64 * MiB,
    page_size=4096,
    read_latency_s=2e-4,
    write_latency_s=6e-5,
    read_bandwidth=5.6e8,
    write_bandwidth=5.1e8,
)

_NODE_KEY_SPACE = KeyRange(encode_key(0), encode_key(50_000))


def pack_envelope(seqno: int, payload: bytes, tombstone: bool = False) -> bytes:
    """Wrap a payload (or a tombstone) with its cluster sequence number."""
    if seqno < 0:
        raise ValueError(f"seqno must be non-negative, got {seqno}")
    return seqno.to_bytes(8, "big") + (b"\x01" if tombstone else b"\x00") + payload


def unpack_envelope(blob: bytes) -> tuple[int, bool, bytes]:
    """``(seqno, is_tombstone, payload)`` of a stored envelope."""
    if len(blob) < _ENVELOPE_HEADER:
        raise ValueError(f"envelope too short: {len(blob)} byte(s)")
    return (
        int.from_bytes(blob[:8], "big"),
        blob[8] == 1,
        blob[_ENVELOPE_HEADER:],
    )


def _node_config(rng_seed: int, scrub=None) -> HyperDBConfig:
    # Low watermarks keep per-node migration active under cluster traffic,
    # mirroring the single-node chaos configuration.
    return HyperDBConfig(
        key_space=_NODE_KEY_SPACE,
        nvme=NVMeConfig(
            num_partitions=2,
            initial_zones_per_partition=2,
            migration_batch_bytes=16 * KiB,
            high_watermark=0.22,
            low_watermark=0.12,
        ),
        semi_num_levels=3,
        semi_size_ratio=4,
        semi_bottom_segments=16,
        semi_level1_target_bytes=128 * KiB,
        scrub=scrub,
        rng_seed=rng_seed,
    )


class ClusterNode:
    """A named HyperDB instance serving one cluster member's replicas."""

    def __init__(
        self, name: str, rng_seed: int = 0, injector=None, scrub=None
    ) -> None:
        self.name = name
        #: ``injector`` (a :class:`repro.simssd.faults.FaultInjector`) is
        #: shared by both devices so latent media corruption can be
        #: injected per node; ``scrub`` (a :class:`repro.scrub.ScrubConfig`)
        #: arms the node's background scrubber.  Both default to off, so
        #: existing cluster digests are untouched.
        self.nvme = SimDevice(_NODE_NVME, injector=injector)
        self.sata = SimDevice(_NODE_SATA, injector=injector)
        self.db = HyperDB(self.nvme, self.sata, _node_config(rng_seed, scrub))
        #: Replica operations rejected because this node was OFFLINE.
        self.offline_rejections = 0
        #: Replica operations served (surcharged) while in BROWNOUT.
        self.brownout_ops = 0

    # ----------------------------------------------------------- replica ops

    def put_envelope(self, key: bytes, envelope: bytes) -> float:
        """Store one versioned envelope; returns service seconds."""
        return self.db.put(key, envelope)

    def get_envelope(
        self, key: bytes
    ) -> tuple[Optional[tuple[int, bool, bytes]], float]:
        """``(unpacked envelope or None, service seconds)`` for one key."""
        blob, service = self.db.get(key)
        if blob is None:
            return None, service
        return unpack_envelope(blob), service

    def keys_with_envelopes(self, keys) -> list[bytes]:
        """Of ``keys``, the ones this node holds any version of (no charge
        ordering guarantees beyond input order; used by audits/tests)."""
        out = []
        for key in keys:
            blob, _ = self.db.get(key)
            if blob is not None:
                out.append(key)
        return out

    # -------------------------------------------------------------- metrics

    def busy_seconds(self) -> float:
        return self.nvme.busy_seconds() + self.sata.busy_seconds()

    def devices(self) -> dict[str, SimDevice]:
        return {"nvme": self.nvme, "sata": self.sata}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ClusterNode({self.name!r})"

"""Sharded HyperDB cluster: consistent-hash routing, replication, quorums.

Composes N single-node :class:`repro.core.hyperdb.HyperDB` instances into
one deterministic cluster simulation:

* :mod:`repro.cluster.ring` — SHA-256 consistent hashing with virtual
  nodes (placement identical in every process);
* :mod:`repro.cluster.node` — one cluster member: a full HyperDB plus the
  versioned value envelope (``seqno | tombstone flag | payload``) that
  orders replica copies;
* :mod:`repro.cluster.router` — the coordinator: quorum reads/writes with
  ``R + W > RF`` validation, node-granularity health windows, hinted
  handoff, read repair, and join/leave rebalance migration jobs.

The cluster chaos scenarios live in :mod:`repro.chaos.cluster`
(``python -m repro.chaos --cluster``).
"""

from repro.cluster.node import ClusterNode, pack_envelope, unpack_envelope
from repro.cluster.ring import HashRing
from repro.cluster.router import ClusterConfig, HyperDBCluster

__all__ = [
    "ClusterConfig",
    "ClusterNode",
    "HashRing",
    "HyperDBCluster",
    "pack_envelope",
    "unpack_envelope",
]

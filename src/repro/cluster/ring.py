"""The consistent-hash ring that places keys on cluster nodes.

Every node owns ``vnodes`` points on a 64-bit ring; a key hashes to a ring
position and its replica *preference list* is the next ``rf`` distinct
nodes clockwise.  Hashing is SHA-256 (never Python's salted ``hash()``),
so placement is a pure function of the node names and the key bytes —
identical in every process, which is what lets the cluster chaos harness
fan scenarios across workers and still produce byte-identical reports.

Virtual nodes keep ownership balanced and make membership changes cheap:
adding or removing one node moves only the key ranges adjacent to its
vnode points, and :func:`HashRing.diff` computes exactly which keys gained
a replica — the input to the rebalance migration planner.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Sequence


def _position(token: bytes) -> int:
    """64-bit ring position of an arbitrary byte token."""
    return int.from_bytes(hashlib.sha256(token).digest()[:8], "big")


class HashRing:
    """Consistent hashing with virtual nodes over a 64-bit key space."""

    def __init__(self, nodes: Iterable[str], vnodes: int = 8) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._nodes: list[str] = []
        self._points: list[int] = []  # sorted vnode positions
        self._owners: list[str] = []  # owner of each position, parallel
        for name in nodes:
            self.add(name)
        if not self._nodes:
            raise ValueError("a ring needs at least one node")

    # ------------------------------------------------------------ membership

    @property
    def nodes(self) -> list[str]:
        """Current members, sorted by name."""
        return sorted(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def add(self, name: str) -> None:
        if name in self._nodes:
            raise ValueError(f"node {name!r} already on the ring")
        self._nodes.append(name)
        for v in range(self.vnodes):
            pos = _position(f"{name}#{v}".encode())
            idx = bisect.bisect_left(self._points, pos)
            self._points.insert(idx, pos)
            self._owners.insert(idx, name)

    def remove(self, name: str) -> None:
        if name not in self._nodes:
            raise ValueError(f"node {name!r} not on the ring")
        if len(self._nodes) == 1:
            raise ValueError("cannot remove the last node")
        self._nodes.remove(name)
        keep = [
            (p, o) for p, o in zip(self._points, self._owners) if o != name
        ]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    # ------------------------------------------------------------- placement

    def replicas_for(self, key: bytes, rf: int) -> list[str]:
        """The ordered preference list: ``rf`` distinct nodes for ``key``.

        Walks clockwise from the key's ring position, skipping vnodes of
        nodes already collected.  ``rf`` is clamped to the member count, so
        a shrunken cluster degrades to fewer replicas instead of raising.
        """
        rf = min(rf, len(self._nodes))
        start = bisect.bisect_right(self._points, _position(key))
        out: list[str] = []
        n = len(self._points)
        for step in range(n):
            owner = self._owners[(start + step) % n]
            if owner not in out:
                out.append(owner)
                if len(out) == rf:
                    break
        return out

    def coordinator_for(self, key: bytes) -> str:
        """The first node on the key's preference list."""
        return self.replicas_for(key, 1)[0]

    # -------------------------------------------------------------- planning

    def diff(
        self, other: "HashRing", keys: Sequence[bytes], rf: int
    ) -> dict[str, list[bytes]]:
        """Keys each node *gains* when membership moves ``self`` → ``other``.

        Returns ``{node: [keys...]}`` for destination nodes that appear in
        ``other``'s preference list for a key but not in ``self``'s — the
        exact copy set a rebalance must move.  Keys are kept in input
        order; node map iteration is sorted for determinism.
        """
        gains: dict[str, list[bytes]] = {}
        for key in keys:
            old = set(self.replicas_for(key, rf))
            for node in other.replicas_for(key, rf):
                if node not in old:
                    gains.setdefault(node, []).append(key)
        return {n: gains[n] for n in sorted(gains)}

"""Background integrity scrub & repair: turn silent corruption into healed
corruption (DESIGN.md §14).

A real tiered KV store runs proactive media scrubbing as *background
traffic* — exactly the traffic class this paper models.  The
:class:`Scrubber` walks every persisted structure of a HyperDB instance —
NVMe zone slots, the partition index checkpoints, and the capacity tier's
semi-SSTable blocks — verifying checksums, charging its reads on the
dedicated ``TrafficKind.SCRUB`` lane (placed on background queues via
``SimDevice.begin_background_job``, like flush/compaction/migration/GC).

On detection, a **repair escalation ladder** heals instead of drops:

1. *re-read with retry* — a transient read error clears; stuck-on-media
   corruption (the simulator's latent bit-flips land at write time) does
   not, and escalates;
2. *rebuild from the redundant tier copy* — a ``promoted`` NVMe resident
   has its authoritative twin in the capacity tier (and vice versa: a
   corrupt capacity block whose keys are promoted-resident on NVMe is
   rebuilt from those residents via the normal ``merge_append`` machinery);
3. *rewrite from live state* — checkpoints, manifests, and WAL content are
   derived data whose authoritative source (index, version, memtable) is
   still in memory, so a corrupt backup is simply re-written;
4. *count as unrecoverable* — when no intact copy exists on this node, the
   loss is surfaced (``unrecoverable_keys``) instead of hidden; at cluster
   level an anti-entropy pass re-replicates those keys from healthy
   replicas (:meth:`repro.cluster.router.HyperDBCluster.anti_entropy`).

Health discipline mirrors :class:`repro.migration.scheduler
.MigrationScheduler`: a pass does not start (and an in-flight pass aborts)
while either device is in a BROWNOUT/OFFLINE window; the missed pass is
queued and drained exactly once after recovery (:meth:`Scrubber
.run_catch_up`).

Digest discipline: nothing here runs unless a scrubber is constructed and
explicitly driven, so with scrub disabled every existing digest stays
byte-identical.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro import obs
from repro.common.errors import CorruptionError, DeviceOfflineError
from repro.common.records import Record
from repro.health.state import HealthState
from repro.lsm.blocks import decode_one
from repro.simssd.traffic import TrafficKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.hyperdb import HyperDB
    from repro.lsm.lsmtree import LSMTree
    from repro.lsm.semi.semisstable import SemiBlock, SemiSSTable
    from repro.nvme.partition import Partition
    from repro.nvme.zone import SlotLocation, Zone


@dataclass(frozen=True)
class ScrubConfig:
    """Tuning of one scrubber."""

    #: Cadence hint for drivers: trigger a pass every this many client ops
    #: (:meth:`Scrubber.maybe_run`).  The scrubber itself never self-fires.
    interval_ops: int = 500
    #: Ladder step 1: charged re-reads before escalating a corrupt
    #: block/slot to rebuild-from-redundancy.
    reread_attempts: int = 1
    #: Verify partition index checkpoints (and heal them from the live
    #: in-memory index).
    verify_checkpoints: bool = True
    #: Verify the WAL's synced groups against their sidecar checksums
    #: (LSM-tree scrub only; HyperDB's durability story is zone slots).
    verify_wal: bool = True

    def __post_init__(self) -> None:
        if self.interval_ops <= 0:
            raise ValueError(
                f"interval_ops must be positive, got {self.interval_ops}"
            )
        if self.reread_attempts < 0:
            raise ValueError(
                f"reread_attempts must be >= 0, got {self.reread_attempts}"
            )


@dataclass
class ScrubStats:
    """What scrubbing scanned, found, and healed."""

    passes: int = 0
    zone_slots_scanned: int = 0
    semi_blocks_scanned: int = 0
    sst_blocks_scanned: int = 0
    wal_groups_scanned: int = 0
    checkpoints_scanned: int = 0
    manifests_scanned: int = 0
    #: Checksum mismatches found (all surfaces).
    detected: int = 0
    #: Objects/structures healed from a redundant copy or live state.
    repaired: int = 0
    #: Corrupt copies proven superseded by a newer intact copy (dropping
    #: them loses nothing).
    harmless: int = 0
    #: Objects with no intact copy left on this node.
    unrecoverable: int = 0
    #: Slots whose checksum was unknown (post-checkpoint-recovery) and was
    #: re-derived after metadata cross-checks.
    reprotected_slots: int = 0
    #: Passes skipped because a device was in a health window.
    paused_passes: int = 0
    #: Catch-up drains executed after health recovered.
    catch_up_drains: int = 0
    #: SSTables pulled from service by the LSM scrub.
    quarantined_tables: int = 0
    #: Keys counted unrecoverable, in detection order — the anti-entropy
    #: pass re-replicates exactly these from healthy replicas.
    unrecoverable_keys: list[bytes] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"scrub: passes={self.passes} detected={self.detected} "
            f"repaired={self.repaired} harmless={self.harmless} "
            f"unrecoverable={self.unrecoverable} paused={self.paused_passes}"
        )


class Scrubber:
    """Deterministic background integrity scrub for one HyperDB instance."""

    def __init__(self, db: "HyperDB", config: Optional[ScrubConfig] = None) -> None:
        self.db = db
        self.config = config or ScrubConfig()
        self.stats = ScrubStats()
        self._catch_up_pending = False
        self._ops_since_pass = 0

    # ------------------------------------------------------------- health

    def devices_healthy(self) -> bool:
        """True when neither device sits in a BROWNOUT/OFFLINE window."""
        return (
            self.db.nvme_device.health() is HealthState.HEALTHY
            and self.db.sata_device.health() is HealthState.HEALTHY
        )

    @property
    def has_catch_up(self) -> bool:
        return self._catch_up_pending

    def _pause(self) -> None:
        self.stats.paused_passes += 1
        self._catch_up_pending = True
        rec = obs.RECORDER
        if rec is not None:
            rec.emit(
                "scrub_paused", t=self.db.nvme_device.busy_seconds(),
            )

    def run_catch_up(self) -> bool:
        """Run the one pass that was paused by a health window.

        Mirrors migration catch-up: the pending flag is cleared before the
        pass, so one recovery drains it exactly once.  Returns True when a
        pass ran.
        """
        if not self._catch_up_pending or not self.devices_healthy():
            return False
        self._catch_up_pending = False
        self.stats.catch_up_drains += 1
        rec = obs.RECORDER
        if rec is not None:
            rec.emit(
                "scrub_catchup", t=self.db.nvme_device.busy_seconds(),
            )
        return self.run_pass()

    # -------------------------------------------------------------- passes

    def maybe_run(self, ops: int = 1) -> bool:
        """Account ``ops`` client operations; run a pass at the configured
        cadence.  Returns True when a pass ran."""
        self._ops_since_pass += ops
        if self._ops_since_pass < self.config.interval_ops:
            return False
        self._ops_since_pass = 0
        return self.run_pass()

    def run_pass(self) -> bool:
        """One full scrub pass over every persisted structure.

        Returns False when the pass was paused (device in a health window
        at entry, or a device went OFFLINE mid-pass); the pass is queued
        for :meth:`run_catch_up` either way.
        """
        if not self.devices_healthy():
            self._pause()
            return False
        db = self.db
        rec = obs.RECORDER
        if rec is not None:
            rec.begin(
                "scrub_pass", t=db.nvme_device.busy_seconds(),
                passes=self.stats.passes,
            )
        detected_before = self.stats.detected
        repaired_before = self.stats.repaired
        try:
            for partition in db.performance_tier.partitions:
                self._scrub_partition(partition)
            self._scrub_capacity()
            if self.config.verify_checkpoints:
                for partition in db.performance_tier.partitions:
                    self._scrub_checkpoint(partition)
        except DeviceOfflineError:
            # A health window opened mid-pass: abort and queue a catch-up,
            # exactly like a migration job interrupted by an outage.
            self._pause()
            if rec is not None:
                rec.end(
                    "scrub_pass", t=db.nvme_device.busy_seconds(),
                    aborted=True,
                )
            return False
        self.stats.passes += 1
        if rec is not None:
            rec.end(
                "scrub_pass", t=db.nvme_device.busy_seconds(),
                detected=self.stats.detected - detected_before,
                repaired=self.stats.repaired - repaired_before,
            )
        return True

    # ---------------------------------------------------- NVMe zone slots

    def _scrub_partition(self, partition: "Partition") -> None:
        """Verify every resident slot of one partition's zones.

        One background job per partition: the zone image is read as bulk
        SCRUB traffic (one I/O per page, like migration's collect), then
        each slot is checked against its index-held CRC.
        """
        device = partition.page_store.device
        device.begin_background_job(TrafficKind.SCRUB)
        store = partition.page_store
        for zone in [partition.hot_zone] + partition.zones():
            page_ids = zone.page_ids()
            if not page_ids:
                continue
            store.read_many(page_ids, TrafficKind.SCRUB)
            for key in sorted(zone.keys):
                loc = partition.index.get(key)
                if loc is None or loc.zone_id != zone.zone_id:
                    continue
                self.stats.zone_slots_scanned += 1
                raw = store.peek(loc.page_id, loc.offset, loc.record_size)
                if loc.crc is not None:
                    if zlib.crc32(raw) == loc.crc:
                        continue
                    self._repair_slot(partition, zone, key, loc)
                else:
                    # Post-checkpoint-recovery slot: the stored checksum
                    # was not part of the media image.  Cross-check every
                    # field the index does know before re-deriving
                    # protection from the media bytes.
                    ok = False
                    try:
                        rec = decode_one(raw)
                        ok = rec.key == key and rec.seqno == loc.seqno
                    except CorruptionError:
                        ok = False
                    if ok:
                        loc.crc = zlib.crc32(raw)
                        self.stats.reprotected_slots += 1
                    else:
                        self._repair_slot(partition, zone, key, loc)

    def _repair_slot(
        self,
        partition: "Partition",
        zone: "Zone",
        key: bytes,
        loc: "SlotLocation",
    ) -> None:
        """Escalation ladder for one corrupt zone slot."""
        self._detect("zone_slot", key=key)
        store = partition.page_store
        for _ in range(self.config.reread_attempts):
            data, _ = store.read(loc.page_id, TrafficKind.SCRUB)
            raw = data[loc.offset : loc.offset + loc.record_size]
            if loc.crc is not None and zlib.crc32(raw) == loc.crc:
                self._repair("zone_slot_reread", key=key)
                return
        if loc.promoted:
            # The authoritative copy lives in the capacity tier: drop the
            # corrupt resident and re-promote the intact twin.
            partition.drop_resident(key)
            try:
                rec, _ = self.db.capacity_tier.get(key, TrafficKind.SCRUB)
            except CorruptionError:
                rec = None
            if rec is not None and not rec.is_tombstone:
                partition.promote(rec, TrafficKind.SCRUB)
                self._repair("zone_slot_from_capacity", key=key)
            else:
                self._unrecoverable(key)
        else:
            # The corrupt slot held the newest version; any capacity copy
            # is older.  Drop it so readers get the older intact version
            # (or a replica's copy) instead of a checksum error, and
            # surface the loss for anti-entropy.
            partition.drop_resident(key)
            self._unrecoverable(key)

    # ------------------------------------------------- capacity-tier walk

    def _scrub_capacity(self) -> None:
        tier = self.db.capacity_tier
        device = tier.fs.device
        levels = tier.levels
        for level_no in range(1, levels.num_levels + 1):
            lvl = levels.level(level_no)
            for seg in sorted(lvl.tables):
                table = lvl.tables[seg]
                if table.num_valid_records == 0:
                    continue
                # One scrub job per table (job granularity mirrors one
                # migration job per partition).
                device.begin_background_job(TrafficKind.SCRUB)
                self._scrub_semi_table(table)

    def _scrub_semi_table(self, table: "SemiSSTable") -> None:
        for block in list(table.blocks):
            if block.is_dead:
                continue
            self.stats.semi_blocks_scanned += 1
            try:
                # cache=None: scrub must read the media, not the page cache.
                table._read_block(block, TrafficKind.SCRUB, cache=None)
            except CorruptionError:
                self._repair_semi_block(table, block)

    def _repair_semi_block(self, table: "SemiSSTable", block: "SemiBlock") -> None:
        """Escalation ladder for one corrupt semi-SSTable block."""
        self._detect("semi_block", table=table.table_id, block=block.block_id)
        for _ in range(self.config.reread_attempts):
            try:
                table._read_block(block, TrafficKind.SCRUB, cache=None)
                self._repair("semi_block_reread", table=table.table_id)
                return
            except CorruptionError:
                pass
        # Per-key triage of the block's valid records against the NVMe tier.
        lost = sorted(
            k for k, e in table._key_map.items() if e[0] == block.block_id
        )
        tier = self.db.performance_tier
        healed: list[Record] = []
        for key in lost:
            partition = tier.partition_for_key(key)
            loc = partition.resident_location(key)
            if loc is None:
                self._unrecoverable(key)
                continue
            if not loc.promoted:
                # NVMe holds a strictly newer version: the corrupt capacity
                # copy was already superseded; dropping it loses nothing.
                self.stats.harmless += 1
                continue
            # Promoted resident: NVMe holds the same version — rebuild the
            # capacity copy from it (index-directed read, no tracker touch).
            try:
                rec, _ = partition._zone_by_id(loc.zone_id).read_object(
                    loc, TrafficKind.SCRUB, None
                )
            except CorruptionError:
                # Both copies rotted: drop the NVMe one too and surface.
                partition.drop_resident(key)
                self._unrecoverable(key)
                continue
            healed.append(Record(key, rec.value, rec.seqno, rec.deleted))
        table._kill_block(block)
        if healed:
            healed.sort(key=lambda r: r.key)
            table.merge_append(healed, TrafficKind.SCRUB)
            self._repair(
                "semi_block_from_nvme", count=len(healed),
                table=table.table_id, records=len(healed),
            )

    # --------------------------------------------------------- checkpoints

    def _scrub_checkpoint(self, partition: "Partition") -> None:
        if not partition._checkpoint_pages:
            return
        self.stats.checkpoints_scanned += 1
        store = partition.page_store
        store.device.begin_background_job(TrafficKind.SCRUB)
        chunks = []
        for pid in partition._checkpoint_pages:
            data, _ = store.read(pid, TrafficKind.SCRUB)
            chunks.append(data)
        image = b"".join(chunks)[: partition._checkpoint_len]
        if len(image) >= 8:
            payload, footer = image[:-4], image[-4:]
            ok = zlib.crc32(payload) == int.from_bytes(footer, "big")
        else:
            ok = False
        if ok:
            return
        self._detect("checkpoint", partition=partition.partition_id)
        # The live in-memory index is the authoritative source; the
        # checkpoint is a derived backup — rewrite it.
        partition.checkpoint(kind=TrafficKind.SCRUB)
        self._repair("checkpoint_rewrite", partition=partition.partition_id)

    # ----------------------------------------------------------- plumbing

    def _detect(self, surface: str, **fields) -> None:
        self.stats.detected += 1
        self.db.stats.counter("scrub_detected").add()
        rec = obs.RECORDER
        if rec is not None:
            rec.emit(
                "scrub_detect", t=self.db.nvme_device.busy_seconds(),
                surface=surface,
                **{k: _printable(v) for k, v in fields.items()},
            )

    def _repair(self, how: str, count: int = 1, **fields) -> None:
        self.stats.repaired += count
        self.db.stats.counter("scrub_repaired").add(count)
        rec = obs.RECORDER
        if rec is not None:
            rec.emit(
                "scrub_repair", t=self.db.nvme_device.busy_seconds(),
                how=how, **{k: _printable(v) for k, v in fields.items()},
            )

    def _unrecoverable(self, key: bytes) -> None:
        self.stats.unrecoverable += 1
        self.stats.unrecoverable_keys.append(key)
        self.db.suspect_keys.append(key)
        self.db.stats.counter("scrub_unrecoverable").add()
        rec = obs.RECORDER
        if rec is not None:
            rec.emit(
                "scrub_unrecoverable", t=self.db.nvme_device.busy_seconds(),
                key=_printable(key),
            )


def _printable(v):
    return v.hex() if isinstance(v, (bytes, bytearray)) else v


# ---------------------------------------------------------------- LSM trees


def scrub_lsm_tree(
    tree: "LSMTree",
    config: Optional[ScrubConfig] = None,
    stats: Optional[ScrubStats] = None,
) -> ScrubStats:
    """One scrub pass over a leveled LSM tree (the RocksDB-like baselines).

    Walks every SSTable's data blocks, the WAL's synced groups, and the
    manifest.  The repair ladder here is shallower than HyperDB's — an LSM
    tree holds exactly one copy of each record, so a corrupt table is
    quarantined (existing behavior, now proactive instead of read-triggered)
    and its records counted ``unrecoverable`` for cluster-level
    re-replication; WAL and manifest are derived from live state and are
    rewritten.
    """
    cfg = config or ScrubConfig()
    st = stats or ScrubStats()
    rec = obs.RECORDER
    for lvl in tree.version.all_levels():
        for table in list(lvl):
            fs = tree.fs_for_level(lvl.level)
            fs.device.begin_background_job(TrafficKind.SCRUB)
            corrupt = False
            for handle in table.handles:
                st.sst_blocks_scanned += 1
                try:
                    table.read_block(handle, TrafficKind.SCRUB, None)
                except CorruptionError:
                    corrupt = True
                    break
            if not corrupt:
                continue
            st.detected += 1
            if rec is not None:
                rec.emit(
                    "scrub_detect", t=fs.device.busy_seconds(),
                    surface="sst_block", table=table.table_id,
                )
            retried = False
            for _ in range(cfg.reread_attempts):
                try:
                    table.read_block(handle, TrafficKind.SCRUB, None)
                    retried = True
                    break
                except CorruptionError:
                    pass
            if retried:
                st.repaired += 1
                continue
            tree._quarantine(lvl.level, table)
            st.quarantined_tables += 1
            st.unrecoverable += table.num_records
            tree.stats.counter("unrecoverable_records").add(table.num_records)
    if cfg.verify_wal and tree.wal is not None:
        checked, bad = tree.wal.verify(TrafficKind.SCRUB)
        st.wal_groups_scanned += checked
        if bad:
            st.detected += bad
            if rec is not None:
                rec.emit(
                    "scrub_detect",
                    t=tree.fs_for_level(tree.options.first_level)
                    .device.busy_seconds(),
                    surface="wal_group", groups=bad,
                )
            # Every synced WAL record is still held by the memtable (the
            # WAL resets at flush), so flushing retires the corrupt bytes
            # and persists the records through the checksummed table path.
            if len(tree._memtable) > 0:
                tree.flush()
                st.repaired += bad
    if tree._manifest is not None:
        st.manifests_scanned += 1
        tables, _, notes = tree._manifest.load_latest()
        if notes or tables is None:
            bad = max(1, len(notes))
            st.detected += bad
            if rec is not None:
                rec.emit(
                    "scrub_detect",
                    t=tree.paths[0].fs.device.busy_seconds(),
                    surface="manifest", skipped=len(notes),
                )
            # The live version is authoritative; resync the rotation seq
            # past any corrupt file so the rewrite cannot collide.
            tree._manifest._seq = tree._manifest._highest_existing_seq()
            tree._write_manifest()
            st.repaired += bad
    st.passes += 1
    return st

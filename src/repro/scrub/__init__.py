"""Background integrity scrub & replica repair (DESIGN.md §14)."""

from repro.scrub.scrubber import (
    ScrubConfig,
    ScrubStats,
    Scrubber,
    scrub_lsm_tree,
)

__all__ = ["ScrubConfig", "ScrubStats", "Scrubber", "scrub_lsm_tree"]
